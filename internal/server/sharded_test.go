// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated engine wrappers across shard counts on purpose.
package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// sameResults asserts two result lists agree exactly: same IDs, same
// distances, same order. The sharded fan-out must be byte-identical to
// the single-tree reference, not approximately equal — the shared bound
// only ever prunes work, never changes answers.
func sameResults(t *testing.T, label string, got, want []trajtree.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Traj.ID != want[i].Traj.ID {
			t.Fatalf("%s: rank %d is T%d, want T%d", label, i, got[i].Traj.ID, want[i].Traj.ID)
		}
		if got[i].Dist != want[i].Dist {
			t.Fatalf("%s: rank %d dist %v != %v (T%d)", label, i, got[i].Dist, want[i].Dist, got[i].Traj.ID)
		}
	}
}

// TestShardedKNNMatchesSingleTree is the acceptance property of the
// sharded engine: for shard counts 1, 2, 4 and 8 over the same corpus,
// KNN and RangeSearch answers are identical to the single reference
// tree's, query for query.
func TestShardedKNNMatchesSingleTree(t *testing.T) {
	db := testDB(160, 11)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	ref, err := trajtree.New(db, topt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if e.Shards() != shards {
				t.Fatalf("engine has %d shards, want %d", e.Shards(), shards)
			}
			if e.Size() != len(db) {
				t.Fatalf("engine size %d, want %d", e.Size(), len(db))
			}
			for it := 0; it < 20; it++ {
				q := db[rng.Intn(len(db))].Clone()
				q.ID = 1_000_000 + it
				if it%3 == 0 { // off-database shapes too
					for i := range q.Points {
						q.Points[i].X += rng.NormFloat64() * 15
						q.Points[i].Y += rng.NormFloat64() * 15
					}
				}
				k := 1 + rng.Intn(10)
				got, st := e.KNN(q, k)
				want, _ := ref.KNN(q, k)
				sameResults(t, fmt.Sprintf("KNN it=%d k=%d", it, k), got, want)
				if st.DistanceCalls == 0 {
					t.Fatalf("it=%d: fan-out reported zero distance calls", it)
				}

				radius := []float64{5, 20, 80}[it%3]
				gotR, _ := e.RangeSearch(q, radius)
				wantR, _ := ref.RangeSearch(q, radius)
				sameResults(t, fmt.Sprintf("Range it=%d r=%v", it, radius), gotR, wantR)
			}
		})
	}
}

// TestShardedBatchAndBruteAgree cross-checks the batch path (inline
// sequential fan-out per worker) against the concurrent single-query
// fan-out on a sharded engine.
func TestShardedBatchAndBruteAgree(t *testing.T) {
	db := testDB(120, 23)
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1, Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*traj.Trajectory, 16)
	for i := range qs {
		qs[i] = db[(i*7)%len(db)].Clone()
		qs[i].ID = 2_000_000 + i
	}
	batch := e.KNNBatch(qs, 4)
	for i, q := range qs {
		single, _ := e.KNN(q, 4)
		sameResults(t, fmt.Sprintf("batch query %d", i), batch[i], single)
	}
}

// TestShardedUpdatesRouteAndStayExact drives inserts and deletes through
// the hash router and verifies lookup routing, duplicate rejection across
// the sharded index, and continued exactness against a brute-force
// reference after the churn.
func TestShardedUpdatesRouteAndStayExact(t *testing.T) {
	db := testDB(90, 29)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	extra := testDB(130, 31)[90:]
	for i, tr := range extra {
		tr.ID = 50_000 + i
		if err := e.Insert(tr); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := e.Insert(extra[0]); err == nil {
		t.Fatal("duplicate insert across shards succeeded")
	}
	for i := 0; i < len(extra); i += 3 {
		if !e.Delete(50_000 + i) {
			t.Fatalf("delete %d reported not present", 50_000+i)
		}
	}
	if e.Delete(50_000) {
		t.Fatal("second delete reported present")
	}
	if e.Lookup(50_001) == nil {
		t.Fatal("lookup lost a surviving insert")
	}
	if e.Lookup(50_000) != nil {
		t.Fatal("lookup found a deleted trajectory")
	}

	// Current membership: the original db plus surviving extras.
	var members []*traj.Trajectory
	members = append(members, db...)
	for i, tr := range extra {
		if i%3 != 0 {
			members = append(members, tr)
		}
	}
	if e.Size() != len(members) {
		t.Fatalf("size %d, want %d", e.Size(), len(members))
	}
	ref, err := trajtree.New(members, topt)
	if err != nil {
		t.Fatal(err)
	}
	q := db[5].Clone()
	q.ID = 3_000_000
	got, _ := e.KNN(q, 7)
	sameResults(t, "post-churn KNN", got, ref.KNNBrute(q, 7))

	if err := e.Rebuild(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	got, _ = e.KNN(q, 7)
	sameResults(t, "post-rebuild KNN", got, ref.KNNBrute(q, 7))
}

// TestShardedConcurrentReadersAndWriters is the race acceptance test for
// the per-shard locking discipline: readers fan out across shards while
// writers hammer inserts, deletes, rebuilds and snapshots concurrently.
// Run with -race.
func TestShardedConcurrentReadersAndWriters(t *testing.T) {
	db := testDB(80, 37)
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5},
		Options{CacheSize: 64, Shards: 4, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const readers = 6
	var wg sync.WaitGroup
	wg.Add(readers)
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := db[(r*25+i)%len(db)].Clone()
				q.ID = 4_000_000 + r*25 + i
				if res, _ := e.KNN(q, 3); len(res) == 0 {
					errs <- fmt.Errorf("reader %d query %d: empty answer", r, i)
					return
				}
				if i%5 == 0 {
					e.KNNBatch([]*traj.Trajectory{q}, 2)
				}
				if i%7 == 0 {
					e.RangeSearch(q, 50)
				}
			}
		}(r)
	}
	extra := testDB(140, 41)[80:]
	for i, tr := range extra {
		tr.ID = 60_000 + i
		if err := e.Insert(tr); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%4 == 0 {
			e.Delete(60_000 + i)
		}
		if i == len(extra)/2 {
			if err := e.SaveSnapshot(e.SnapshotDir()); err != nil {
				t.Fatalf("concurrent snapshot: %v", err)
			}
		}
	}
	if err := e.Rebuild(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The snapshot taken mid-churn must be loadable: each manifest size
	// is captured under the same lock hold as the shard stream, so live
	// writers cannot desynchronise the two.
	loaded, err := LoadSnapshot(e.SnapshotDir(), Options{CacheSize: -1})
	if err != nil {
		t.Fatalf("loading mid-churn snapshot: %v", err)
	}
	probe := db[0].Clone()
	probe.ID = 4_900_000
	if res, _ := loaded.KNN(probe, 3); len(res) == 0 {
		t.Fatal("mid-churn snapshot answers nothing")
	}

	st := e.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats shards %d / per-shard %d, want 4", st.Shards, len(st.PerShard))
	}
	sum, maxH := 0, 0
	for _, ps := range st.PerShard {
		sum += ps.Size
		if ps.Height > maxH {
			maxH = ps.Height
		}
	}
	if sum != st.Size || maxH != st.Height {
		t.Fatalf("per-shard sum %d/max %d disagree with totals %d/%d", sum, maxH, st.Size, st.Height)
	}
	if st.Snapshots != 1 {
		t.Fatalf("snapshots counter %d, want 1", st.Snapshots)
	}
}

// TestShardRoutingIsStable pins the placement hash: shard assignment is
// part of the snapshot format, so accidental changes must fail loudly.
func TestShardRoutingIsStable(t *testing.T) {
	if shardIndex(0, 1) != 0 || shardIndex(12345, 1) != 0 {
		t.Fatal("single shard must own everything")
	}
	for _, n := range []int{2, 4, 8} {
		counts := make([]int, n)
		for id := 0; id < 4096; id++ {
			s := shardIndex(id, n)
			if s < 0 || s >= n {
				t.Fatalf("shardIndex(%d, %d) = %d out of range", id, n, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c < 4096/n/2 || c > 4096/n*2 {
				t.Fatalf("n=%d: shard %d holds %d of 4096 — placement badly skewed", n, s, c)
			}
		}
	}
}
