// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins stats accumulation of the deprecated wrappers on purpose.
package server

import (
	"testing"

	"trajmatch/internal/traj"
)

// The engine must fold per-query kernel instrumentation into its
// cumulative counters for both the single-query and batch paths, and the
// early-abandon counter must actually move on a workload where pruning
// can fire.
func TestEngineAccumulatesKernelStats(t *testing.T) {
	e := newTestEngine(t, 80, Options{CacheSize: -1})
	db := testDB(80, 7)

	q := db[3].Clone()
	q.ID = 900_000
	_, st := e.KNN(q, 5)
	got := e.Stats()
	if got.DistanceCalls == 0 || got.DistanceCalls != uint64(st.DistanceCalls) {
		t.Errorf("cumulative distance calls %d, want %d", got.DistanceCalls, st.DistanceCalls)
	}
	if got.LowerBoundCalls != uint64(st.LowerBoundCalls) {
		t.Errorf("cumulative lower-bound calls %d, want %d", got.LowerBoundCalls, st.LowerBoundCalls)
	}
	if got.EarlyAbandons != uint64(st.EarlyAbandons) {
		t.Errorf("cumulative early abandons %d, want %d", got.EarlyAbandons, st.EarlyAbandons)
	}

	// Batch path: counters grow by the batch total, flushed once.
	qs := make([]*traj.Trajectory, 6)
	wantDist := got.DistanceCalls
	for i := range qs {
		qs[i] = db[(i*11)%len(db)].Clone()
		qs[i].ID = 910_000 + i
	}
	e.KNNBatch(qs, 5)
	after := e.Stats()
	if after.DistanceCalls <= wantDist {
		t.Errorf("batch did not advance distance calls: %d -> %d", wantDist, after.DistanceCalls)
	}
	if after.Queries != 1+uint64(len(qs)) {
		t.Errorf("queries %d, want %d", after.Queries, 1+len(qs))
	}

	// Range search accumulates too, and a tight radius forces abandons.
	_, rst := e.RangeSearch(q, 1e-6)
	final := e.Stats()
	if rst.EarlyAbandons == 0 {
		t.Error("tight-radius range search never abandoned")
	}
	if final.EarlyAbandons != after.EarlyAbandons+uint64(rst.EarlyAbandons) {
		t.Errorf("early abandons %d, want %d", final.EarlyAbandons, after.EarlyAbandons+uint64(rst.EarlyAbandons))
	}
}
