package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// WireTrajectory is the JSON form of a trajectory shared by every
// endpoint: points are [x, y, t] triples, matching the NDJSON layout of
// package dataio.
type WireTrajectory struct {
	ID     int          `json:"id"`
	Label  int          `json:"label,omitempty"`
	Points [][3]float64 `json:"points"`
}

// ToTrajectory converts the wire form to the internal model.
func (w WireTrajectory) ToTrajectory() (*traj.Trajectory, error) {
	pts := make([]traj.Point, len(w.Points))
	for i, p := range w.Points {
		pts[i] = traj.P(p[0], p[1], p[2])
	}
	t := &traj.Trajectory{ID: w.ID, Label: w.Label, Points: pts}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Neighbor is one k-NN or range answer on the wire. Only the matched
// trajectory's identity and distance travel back; clients that need the
// geometry already have the database or can fetch it out of band.
type Neighbor struct {
	ID    int     `json:"id"`
	Label int     `json:"label,omitempty"`
	Dist  float64 `json:"dist"`
}

func toNeighbors(rs []trajtree.Result) []Neighbor {
	out := make([]Neighbor, len(rs))
	for i, r := range rs {
		out[i] = Neighbor{ID: r.Traj.ID, Label: r.Traj.Label, Dist: r.Dist}
	}
	return out
}

// WireStats mirrors trajtree.Stats in snake_case JSON.
type WireStats struct {
	DistanceCalls   int `json:"distance_calls"`
	EarlyAbandons   int `json:"early_abandons"`
	LowerBoundCalls int `json:"lower_bound_calls"`
	NodesVisited    int `json:"nodes_visited"`
	NodesPruned     int `json:"nodes_pruned"`
}

func toWireStats(st trajtree.Stats) WireStats {
	return WireStats{
		DistanceCalls:   st.DistanceCalls,
		EarlyAbandons:   st.EarlyAbandons,
		LowerBoundCalls: st.LowerBoundCalls,
		NodesVisited:    st.NodesVisited,
		NodesPruned:     st.NodesPruned,
	}
}

// KNNRequest is the body of POST /knn.
type KNNRequest struct {
	Query WireTrajectory `json:"query"`
	K     int            `json:"k"`
}

// KNNResponse is the body of a successful POST /knn. Cached answers
// carry zero Stats — the tree was never touched — so Cached lets clients
// measuring pruning effectiveness discard them.
type KNNResponse struct {
	Results []Neighbor `json:"results"`
	Stats   WireStats  `json:"stats"`
	Cached  bool       `json:"cached,omitempty"`
	TookMS  float64    `json:"took_ms"`
}

// KNNBatchRequest is the body of POST /knn/batch.
type KNNBatchRequest struct {
	Queries []WireTrajectory `json:"queries"`
	K       int              `json:"k"`
}

// KNNBatchResponse carries one answer list per query, in request order.
type KNNBatchResponse struct {
	Results [][]Neighbor `json:"results"`
	TookMS  float64      `json:"took_ms"`
}

// RangeRequest is the body of POST /range.
type RangeRequest struct {
	Query  WireTrajectory `json:"query"`
	Radius float64        `json:"radius"`
}

// RangeResponse is the body of a successful POST /range.
type RangeResponse struct {
	Results []Neighbor `json:"results"`
	Stats   WireStats  `json:"stats"`
	TookMS  float64    `json:"took_ms"`
}

// InsertRequest is the body of POST /insert; several trajectories may be
// inserted in one call.
type InsertRequest struct {
	Trajectories []WireTrajectory `json:"trajectories"`
}

// InsertResponse reports how many trajectories were added.
type InsertResponse struct {
	Inserted int `json:"inserted"`
	Size     int `json:"size"`
}

// DeleteRequest is the body of POST /delete; several trajectories may be
// removed in one call.
type DeleteRequest struct {
	IDs []int `json:"ids"`
}

// DeleteResponse reports how many of the requested IDs were present and
// removed; Missing lists the ones that were not indexed.
type DeleteResponse struct {
	Deleted int   `json:"deleted"`
	Missing []int `json:"missing,omitempty"`
	Size    int   `json:"size"`
}

// RebuildResponse is the body of a successful POST /rebuild.
type RebuildResponse struct {
	Size   int     `json:"size"`
	Shards int     `json:"shards"`
	TookMS float64 `json:"took_ms"`
}

// SnapshotResponse is the body of a successful POST /snapshot.
type SnapshotResponse struct {
	Dir    string  `json:"dir"`
	Shards int     `json:"shards"`
	Size   int     `json:"size"`
	TookMS float64 `json:"took_ms"`
}

// ErrorResponse is the body of every non-2xx answer produced by the
// handlers themselves. Routing-level rejections (404 for unknown paths,
// 405 for wrong methods) come from net/http's ServeMux and are plain
// text.
type ErrorResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP surface over e:
//
//	POST /knn        {"query": {...}, "k": 10}
//	POST /knn/batch  {"queries": [{...}, ...], "k": 10}
//	POST /range      {"query": {...}, "radius": 250}
//	POST /insert     {"trajectories": [{...}, ...]}
//	POST /delete     {"ids": [17, 42]}
//	POST /rebuild    (no body)
//	POST /snapshot   (no body; 412 unless Options.SnapshotDir is set)
//	GET  /stats
//	GET  /healthz
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /knn", func(w http.ResponseWriter, r *http.Request) {
		var req KNNRequest
		if !decode(w, r, &req) {
			return
		}
		q, err := req.Query.ToTrajectory()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query: %v", err))
			return
		}
		if req.K <= 0 {
			writeError(w, http.StatusBadRequest, "k must be positive")
			return
		}
		t0 := time.Now()
		res, st, cached := e.knn(q, req.K)
		writeJSON(w, http.StatusOK, KNNResponse{
			Results: toNeighbors(res),
			Stats:   toWireStats(st),
			Cached:  cached,
			TookMS:  msSince(t0),
		})
	})
	mux.HandleFunc("POST /knn/batch", func(w http.ResponseWriter, r *http.Request) {
		var req KNNBatchRequest
		if !decode(w, r, &req) {
			return
		}
		if req.K <= 0 {
			writeError(w, http.StatusBadRequest, "k must be positive")
			return
		}
		qs := make([]*traj.Trajectory, len(req.Queries))
		for i, wq := range req.Queries {
			q, err := wq.ToTrajectory()
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
				return
			}
			qs[i] = q
		}
		t0 := time.Now()
		batches := e.KNNBatch(qs, req.K)
		out := make([][]Neighbor, len(batches))
		for i, rs := range batches {
			out[i] = toNeighbors(rs)
		}
		writeJSON(w, http.StatusOK, KNNBatchResponse{Results: out, TookMS: msSince(t0)})
	})
	mux.HandleFunc("POST /range", func(w http.ResponseWriter, r *http.Request) {
		var req RangeRequest
		if !decode(w, r, &req) {
			return
		}
		q, err := req.Query.ToTrajectory()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query: %v", err))
			return
		}
		if req.Radius < 0 {
			writeError(w, http.StatusBadRequest, "radius must be non-negative")
			return
		}
		t0 := time.Now()
		res, st := e.RangeSearch(q, req.Radius)
		writeJSON(w, http.StatusOK, RangeResponse{
			Results: toNeighbors(res),
			Stats:   toWireStats(st),
			TookMS:  msSince(t0),
		})
	})
	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, r *http.Request) {
		var req InsertRequest
		if !decode(w, r, &req) {
			return
		}
		inserted := 0
		for i, wt := range req.Trajectories {
			tr, err := wt.ToTrajectory()
			if err == nil {
				err = e.Insert(tr)
			}
			if err != nil {
				// Earlier trajectories stay inserted; report how far we got.
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("trajectory %d: %v (inserted %d before failure)", i, err, inserted))
				return
			}
			inserted++
		}
		writeJSON(w, http.StatusOK, InsertResponse{Inserted: inserted, Size: e.Size()})
	})
	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, r *http.Request) {
		var req DeleteRequest
		if !decode(w, r, &req) {
			return
		}
		if len(req.IDs) == 0 {
			writeError(w, http.StatusBadRequest, "ids must be non-empty")
			return
		}
		resp := DeleteResponse{}
		for _, id := range req.IDs {
			if e.Delete(id) {
				resp.Deleted++
			} else {
				resp.Missing = append(resp.Missing, id)
			}
		}
		resp.Size = e.Size()
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /rebuild", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if err := e.Rebuild(); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, RebuildResponse{
			Size:   e.Size(),
			Shards: e.Shards(),
			TookMS: msSince(t0),
		})
	})
	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		dir := e.SnapshotDir()
		if dir == "" {
			writeError(w, http.StatusPreconditionFailed,
				"no snapshot directory configured (start with -snapshot or set Options.SnapshotDir)")
			return
		}
		t0 := time.Now()
		if err := e.SaveSnapshot(dir); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, SnapshotResponse{
			Dir:    dir,
			Shards: e.Shards(),
			Size:   e.Size(),
			TookMS: msSince(t0),
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// maxBodyBytes bounds request bodies; batch inserts of long trajectories
// fit comfortably, runaway clients do not.
const maxBodyBytes = 64 << 20

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}
