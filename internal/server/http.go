package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/traj"
)

// WireTrajectory is the JSON form of a trajectory shared by every
// endpoint: points are [x, y, t] triples, matching the NDJSON layout of
// package dataio.
type WireTrajectory struct {
	ID     int          `json:"id"`
	Label  int          `json:"label,omitempty"`
	Points [][3]float64 `json:"points"`
}

// ToTrajectory converts the wire form to the internal model.
func (w WireTrajectory) ToTrajectory() (*traj.Trajectory, error) {
	pts := make([]traj.Point, len(w.Points))
	for i, p := range w.Points {
		pts[i] = traj.P(p[0], p[1], p[2])
	}
	t := &traj.Trajectory{ID: w.ID, Label: w.Label, Points: pts}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Neighbor is one k-NN or range answer on the wire. Only the matched
// trajectory's identity and distance travel back; clients that need the
// geometry already have the database or can fetch it out of band.
type Neighbor struct {
	ID    int     `json:"id"`
	Label int     `json:"label,omitempty"`
	Dist  float64 `json:"dist"`
}

func toNeighbors(rs []backend.Result) []Neighbor {
	out := make([]Neighbor, len(rs))
	for i, r := range rs {
		out[i] = Neighbor{ID: r.Traj.ID, Label: r.Traj.Label, Dist: r.Dist}
	}
	return out
}

// WireStats mirrors backend.Stats in snake_case JSON. The prefilter
// pair appears only on prefiltered queries: candidates admitted for
// exact verification versus indexed trajectories skipped without any
// bound or distance work.
type WireStats struct {
	DistanceCalls   int `json:"distance_calls"`
	EarlyAbandons   int `json:"early_abandons"`
	LowerBoundCalls int `json:"lower_bound_calls"`
	NodesVisited    int `json:"nodes_visited"`
	NodesPruned     int `json:"nodes_pruned"`

	PrefilterCandidates int `json:"prefilter_candidates,omitempty"`
	PrefilterSkipped    int `json:"prefilter_skipped,omitempty"`
}

func toWireStats(st backend.Stats) WireStats {
	return WireStats{
		DistanceCalls:   st.DistanceCalls,
		EarlyAbandons:   st.EarlyAbandons,
		LowerBoundCalls: st.LowerBoundCalls,
		NodesVisited:    st.NodesVisited,
		NodesPruned:     st.NodesPruned,

		PrefilterCandidates: st.PrefilterCandidates,
		PrefilterSkipped:    st.PrefilterSkipped,
	}
}

// SearchRequest is the body of POST /v1/search: the embedded Query's
// own wire form (kind, k, radius, limit, max_evals, with_stats) plus
// the query trajectory — or trajectories, for a batch; exactly one of
// the two must be set. The kind travels in the body, so one endpoint
// serves every search variant.
type SearchRequest struct {
	Query
	QueryTraj *WireTrajectory  `json:"query,omitempty"`
	Queries   []WireTrajectory `json:"queries,omitempty"`
}

// WireAnswer is one Answer on the wire; Stats appears only when the
// request set with_stats.
type WireAnswer struct {
	Results   []Neighbor `json:"results"`
	Stats     *WireStats `json:"stats,omitempty"`
	Cached    bool       `json:"cached,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`
	// Degraded marks a partial cluster answer (some shard group was
	// unreachable); see Answer.Degraded.
	Degraded bool `json:"degraded,omitempty"`
}

// ToWireAnswer converts an Answer to its wire form, attaching the stats
// copy only when the request asked for it. Exported for the cluster
// router, whose answers must take exactly the shape of the engine's.
func ToWireAnswer(a Answer, withStats bool) WireAnswer {
	w := WireAnswer{Results: toNeighbors(a.Results), Cached: a.Cached, Truncated: a.Truncated, Degraded: a.Degraded}
	if withStats {
		st := toWireStats(a.Stats)
		w.Stats = &st
	}
	return w
}

// SearchResponse is the body of a successful single-query POST
// /v1/search.
type SearchResponse struct {
	WireAnswer
	TookMS float64 `json:"took_ms"`
}

// SearchBatchResponse is the body of a successful batched POST
// /v1/search: one WireAnswer per query, in request order.
type SearchBatchResponse struct {
	Answers []WireAnswer `json:"answers"`
	TookMS  float64      `json:"took_ms"`
}

// KNNRequest is the body of the deprecated POST /knn.
type KNNRequest struct {
	Query WireTrajectory `json:"query"`
	K     int            `json:"k"`
}

// KNNResponse is the body of a successful POST /knn. Cached answers
// carry zero Stats — the tree was never touched — so Cached lets clients
// measuring pruning effectiveness discard them.
type KNNResponse struct {
	Results []Neighbor `json:"results"`
	Stats   WireStats  `json:"stats"`
	Cached  bool       `json:"cached,omitempty"`
	TookMS  float64    `json:"took_ms"`
}

// KNNBatchRequest is the body of the deprecated POST /knn/batch.
type KNNBatchRequest struct {
	Queries []WireTrajectory `json:"queries"`
	K       int              `json:"k"`
}

// KNNBatchResponse carries one answer list per query, in request order.
type KNNBatchResponse struct {
	Results [][]Neighbor `json:"results"`
	TookMS  float64      `json:"took_ms"`
}

// RangeRequest is the body of the deprecated POST /range.
type RangeRequest struct {
	Query  WireTrajectory `json:"query"`
	Radius float64        `json:"radius"`
}

// RangeResponse is the body of a successful POST /range.
type RangeResponse struct {
	Results []Neighbor `json:"results"`
	Stats   WireStats  `json:"stats"`
	TookMS  float64    `json:"took_ms"`
}

// InsertRequest is the body of POST /v1/insert; several trajectories may
// be inserted in one call.
type InsertRequest struct {
	Trajectories []WireTrajectory `json:"trajectories"`
}

// InsertResponse reports how many trajectories were added.
type InsertResponse struct {
	Inserted int `json:"inserted"`
	Size     int `json:"size"`
}

// DeleteRequest is the body of POST /v1/delete; several trajectories may
// be removed in one call.
type DeleteRequest struct {
	IDs []int `json:"ids"`
}

// DeleteResponse reports how many of the requested IDs were present and
// removed; Missing lists the ones that were not indexed.
type DeleteResponse struct {
	Deleted int   `json:"deleted"`
	Missing []int `json:"missing,omitempty"`
	Size    int   `json:"size"`
}

// RebuildResponse is the body of a successful POST /v1/rebuild.
type RebuildResponse struct {
	Size   int     `json:"size"`
	Shards int     `json:"shards"`
	TookMS float64 `json:"took_ms"`
}

// SnapshotResponse is the body of a successful POST /v1/snapshot.
type SnapshotResponse struct {
	Dir    string  `json:"dir"`
	Shards int     `json:"shards"`
	Size   int     `json:"size"`
	TookMS float64 `json:"took_ms"`
}

// Error codes of the JSON error envelope. Machine-readable and stable;
// the human-readable message may change freely.
const (
	CodeBadRequest         = "bad_request"
	CodeInvalidQuery       = "invalid_query"
	CodeUnknownMetric      = "unknown_metric"
	CodeMetricNotLoaded    = "metric_not_loaded"
	CodeNotImplemented     = "not_implemented"
	CodeDeadlineExceeded   = "deadline_exceeded"
	CodeCanceled           = "canceled"
	CodeNotFound           = "not_found"
	CodeMethodNotAllowed   = "method_not_allowed"
	CodePreconditionFailed = "precondition_failed"
	CodeNotOwned           = "not_owned"
	CodeUnavailable        = "unavailable"
	CodeInternal           = "internal"
)

// ErrorResponse is the consistent JSON error envelope of every non-2xx
// answer produced under /v1 (and, since the envelope is additive, of the
// deprecated routes too): a human-readable message plus a stable
// machine-readable code.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// HandlerOptions configure the HTTP surface. The zero value serves with
// no per-request timeout.
type HandlerOptions struct {
	// QueryTimeout, when positive, bounds every search request: the
	// request context is wrapped in a deadline that the engine honours
	// cooperatively, and an expiry surfaces as a 504 with code
	// "deadline_exceeded". Updates (insert/delete/rebuild/snapshot) are
	// not bounded — aborting them midway would be worse than finishing.
	QueryTimeout time.Duration
	// Version, when non-nil, is what GET /v1/version reports; nil
	// derives a standalone-role payload from the engine and build info.
	Version *VersionInfo
}

// NewAPIHandler returns the versioned HTTP surface over e:
//
//	POST /v1/search    {"kind": "knn"|"range"|"subknn", "metric": "edwp"|"dtw"|"edr",
//	                    "query": {...} | "queries": [...],
//	                    "k": 10, "radius": 250, "limit": 0, "max_evals": 0,
//	                    "prefilter": false, "with_stats": true}
//	POST /v1/insert    {"trajectories": [{...}, ...]}
//	POST /v1/delete    {"ids": [17, 42]}
//	POST /v1/rebuild   (no body)
//	POST /v1/snapshot  (no body; 412 unless Options.SnapshotDir is set)
//	POST /v1/append    {"id": 7, "label": 1, "points": [[x,y,t], ...]}
//	POST /v1/seal      {"id": 7}
//	POST /v1/watch     {"pattern": {...}, "threshold": 250 | "k": 5}
//	POST /v1/unwatch   {"watch": 3}
//	GET  /v1/events    ?since=N&max=M&wait_ms=T (or ?sse=1 for SSE)
//	GET  /v1/stats
//	GET  /v1/version
//	GET  /v1/healthz
//
// Every non-2xx answer is the JSON envelope {"error": ..., "code": ...}.
// The pre-versioning routes (/knn, /knn/batch, /range, /insert, /delete,
// /rebuild, /snapshot, /stats, /healthz) remain as aliases with their
// original wire formats, answering with a "Deprecation: true" header and
// a Link to their successor.
func NewAPIHandler(e *Engine, opt HandlerOptions) http.Handler {
	h := &api{e: e, opt: opt}
	mux := http.NewServeMux()

	v1 := map[string]struct {
		method  string
		handler http.HandlerFunc
	}{
		"/v1/search":   {http.MethodPost, h.search},
		"/v1/insert":   {http.MethodPost, h.insert},
		"/v1/delete":   {http.MethodPost, h.delete},
		"/v1/rebuild":  {http.MethodPost, h.rebuild},
		"/v1/snapshot": {http.MethodPost, h.snapshot},
		"/v1/append":   {http.MethodPost, h.append},
		"/v1/seal":     {http.MethodPost, h.seal},
		"/v1/watch":    {http.MethodPost, h.watch},
		"/v1/unwatch":  {http.MethodPost, h.unwatch},
		"/v1/events":   {http.MethodGet, h.events},
		"/v1/stats":    {http.MethodGet, h.stats},
		"/v1/version":  {http.MethodGet, h.version},
		"/v1/healthz":  {http.MethodGet, h.healthz},
	}
	for path, ep := range v1 {
		mux.HandleFunc(ep.method+" "+path, ep.handler)
	}
	// Fallback for everything else under /v1: answer with the envelope,
	// not net/http's plain text, so /v1 clients can always parse the
	// body. The method-less "/v1/" pattern also shadows ServeMux's own
	// 405 handling for the routes above, so wrong-method requests to real
	// endpoints are distinguished here from genuinely unknown paths.
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		if ep, ok := v1[r.URL.Path]; ok {
			w.Header().Set("Allow", ep.method)
			writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				fmt.Sprintf("%s requires %s, got %s", r.URL.Path, ep.method, r.Method))
			return
		}
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})

	mux.HandleFunc("POST /knn", deprecated("/v1/search", h.legacyKNN))
	mux.HandleFunc("POST /knn/batch", deprecated("/v1/search", h.legacyKNNBatch))
	mux.HandleFunc("POST /range", deprecated("/v1/search", h.legacyRange))
	mux.HandleFunc("POST /insert", deprecated("/v1/insert", h.insert))
	mux.HandleFunc("POST /delete", deprecated("/v1/delete", h.delete))
	mux.HandleFunc("POST /rebuild", deprecated("/v1/rebuild", h.rebuild))
	mux.HandleFunc("POST /snapshot", deprecated("/v1/snapshot", h.snapshot))
	mux.HandleFunc("GET /stats", deprecated("/v1/stats", h.stats))
	mux.HandleFunc("GET /healthz", deprecated("/v1/healthz", h.healthz))
	return withRecovery(mux)
}

// withRecovery converts a handler panic into the standard 500 envelope
// instead of killing the connection (and, pre-Go1.8-style deployments,
// the server): one poisoned request must not take the engine down with
// it. http.ErrAbortHandler re-panics — it is the sanctioned way to
// abort a response and net/http handles it quietly.
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			// If the handler already wrote a status line this header is
			// discarded (net/http logs the superfluous WriteHeader); for
			// the common panic-before-write case the client gets the
			// envelope.
			writeError(w, http.StatusInternalServerError, CodeInternal,
				fmt.Sprintf("internal error handling %s %s: %v", r.Method, r.URL.Path, v))
		}()
		next.ServeHTTP(w, r)
	})
}

// NewHandler returns the HTTP surface over e with default options.
//
// Deprecated: use NewAPIHandler, which takes HandlerOptions (notably the
// per-request query timeout).
func NewHandler(e *Engine) http.Handler {
	return NewAPIHandler(e, HandlerOptions{})
}

// deprecated marks a legacy route's responses with the standard
// deprecation headers pointing at its /v1 successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// api bundles the engine and options behind the handlers.
type api struct {
	e   *Engine
	opt HandlerOptions
}

// queryCtx derives the context search handlers run under: the request's
// own context (so a disconnecting client cancels its query) bounded by
// the configured per-request timeout.
func (h *api) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.opt.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), h.opt.QueryTimeout)
	}
	return r.Context(), func() {}
}

// writeSearchError maps an Engine.Search error onto the envelope.
func writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownMetric):
		writeError(w, http.StatusBadRequest, CodeUnknownMetric, err.Error())
	case errors.Is(err, ErrMetricNotLoaded):
		writeError(w, http.StatusBadRequest, CodeMetricNotLoaded, err.Error())
	case errors.Is(err, ErrNotSupported):
		writeError(w, http.StatusNotImplemented, CodeNotImplemented, err.Error())
	case errors.Is(err, ErrInvalidQuery):
		writeError(w, http.StatusBadRequest, CodeInvalidQuery, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Usually the client went away; the envelope is written for the
		// rare caller still listening.
		writeError(w, http.StatusServiceUnavailable, CodeCanceled, "query canceled")
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

func (h *api) search(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	if (req.QueryTraj == nil) == (len(req.Queries) == 0) {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"exactly one of \"query\" and \"queries\" must be set")
		return
	}
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	if req.QueryTraj != nil {
		q, err := req.QueryTraj.ToTrajectory()
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("query: %v", err))
			return
		}
		t0 := time.Now()
		ans, err := h.e.Search(ctx, q, req.Query)
		if err != nil {
			writeSearchError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, SearchResponse{
			WireAnswer: ToWireAnswer(ans, req.WithStats),
			TookMS:     msSince(t0),
		})
		return
	}
	qs := make([]*traj.Trajectory, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.ToTrajectory()
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		qs[i] = q
	}
	t0 := time.Now()
	answers, err := h.e.SearchBatch(ctx, qs, req.Query)
	if err != nil {
		writeSearchError(w, err)
		return
	}
	out := make([]WireAnswer, len(answers))
	for i, a := range answers {
		out[i] = ToWireAnswer(a, req.WithStats)
	}
	writeJSON(w, http.StatusOK, SearchBatchResponse{Answers: out, TookMS: msSince(t0)})
}

func (h *api) legacyKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.Query.ToTrajectory()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("query: %v", err))
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "k must be positive")
		return
	}
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	t0 := time.Now()
	ans, err := h.e.Search(ctx, q, Query{Kind: KindKNN, K: req.K, WithStats: true})
	if err != nil {
		writeSearchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, KNNResponse{
		Results: toNeighbors(ans.Results),
		Stats:   toWireStats(ans.Stats),
		Cached:  ans.Cached,
		TookMS:  msSince(t0),
	})
}

func (h *api) legacyKNNBatch(w http.ResponseWriter, r *http.Request) {
	var req KNNBatchRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "k must be positive")
		return
	}
	qs := make([]*traj.Trajectory, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.ToTrajectory()
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		qs[i] = q
	}
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	t0 := time.Now()
	answers, err := h.e.SearchBatch(ctx, qs, Query{Kind: KindKNN, K: req.K})
	if err != nil {
		writeSearchError(w, err)
		return
	}
	out := make([][]Neighbor, len(answers))
	for i, a := range answers {
		out[i] = toNeighbors(a.Results)
	}
	writeJSON(w, http.StatusOK, KNNBatchResponse{Results: out, TookMS: msSince(t0)})
}

func (h *api) legacyRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.Query.ToTrajectory()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("query: %v", err))
		return
	}
	if req.Radius < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "radius must be non-negative")
		return
	}
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	t0 := time.Now()
	ans, err := h.e.Search(ctx, q, Query{Kind: KindRange, Radius: req.Radius, WithStats: true})
	if err != nil {
		writeSearchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RangeResponse{
		Results: toNeighbors(ans.Results),
		Stats:   toWireStats(ans.Stats),
		TookMS:  msSince(t0),
	})
}

// writeIfImmutable answers 501 not_implemented when the engine holds a
// backend without the mutation capability (DTW/EDR), reporting true so
// update handlers return early.
func (h *api) writeIfImmutable(w http.ResponseWriter) bool {
	if err := h.e.CanMutate(); err != nil {
		writeError(w, http.StatusNotImplemented, CodeNotImplemented, err.Error())
		return true
	}
	return false
}

func (h *api) insert(w http.ResponseWriter, r *http.Request) {
	if h.writeIfImmutable(w) {
		return
	}
	var req InsertRequest
	if !decode(w, r, &req) {
		return
	}
	inserted := 0
	for i, wt := range req.Trajectories {
		tr, err := wt.ToTrajectory()
		if err == nil {
			err = h.e.Insert(tr)
		}
		if err != nil {
			// Earlier trajectories stay inserted; report how far we got.
			status, code := http.StatusBadRequest, CodeBadRequest
			if errors.Is(err, ErrNotOwned) {
				// A misrouted cluster mutation, not a bad payload.
				status, code = http.StatusMisdirectedRequest, CodeNotOwned
			}
			writeError(w, status, code,
				fmt.Sprintf("trajectory %d: %v (inserted %d before failure)", i, err, inserted))
			return
		}
		inserted++
	}
	writeJSON(w, http.StatusOK, InsertResponse{Inserted: inserted, Size: h.e.Size()})
}

func (h *api) delete(w http.ResponseWriter, r *http.Request) {
	if h.writeIfImmutable(w) {
		return
	}
	var req DeleteRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "ids must be non-empty")
		return
	}
	resp := DeleteResponse{}
	for _, id := range req.IDs {
		if h.e.Delete(id) {
			resp.Deleted++
		} else {
			resp.Missing = append(resp.Missing, id)
		}
	}
	resp.Size = h.e.Size()
	writeJSON(w, http.StatusOK, resp)
}

func (h *api) rebuild(w http.ResponseWriter, r *http.Request) {
	if h.writeIfImmutable(w) {
		return
	}
	t0 := time.Now()
	if err := h.e.Rebuild(); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, RebuildResponse{
		Size:   h.e.Size(),
		Shards: h.e.Shards(),
		TookMS: msSince(t0),
	})
}

func (h *api) snapshot(w http.ResponseWriter, r *http.Request) {
	dir := h.e.SnapshotDir()
	if dir == "" {
		writeError(w, http.StatusPreconditionFailed, CodePreconditionFailed,
			"no snapshot directory configured (start with -snapshot or set Options.SnapshotDir)")
		return
	}
	t0 := time.Now()
	if err := h.e.SaveSnapshot(dir); err != nil {
		if errors.Is(err, ErrNotSupported) {
			writeError(w, http.StatusNotImplemented, CodeNotImplemented, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Dir:    dir,
		Shards: h.e.Shards(),
		Size:   h.e.Size(),
		TookMS: msSince(t0),
	})
}

func (h *api) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.e.Stats())
}

func (h *api) version(w http.ResponseWriter, r *http.Request) {
	v := h.opt.Version
	if v == nil {
		vi := NewVersionInfo(RoleStandalone, h.e)
		v = &vi
	}
	writeJSON(w, http.StatusOK, *v)
}

func (h *api) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// maxBodyBytes bounds request bodies; batch inserts of long trajectories
// fit comfortably, runaway clients do not.
const maxBodyBytes = 64 << 20

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}
