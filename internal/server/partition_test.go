package server

import (
	"context"
	"errors"
	"testing"

	"trajmatch/internal/backend"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

func TestResolvePlacementValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Partition
		ok   bool
	}{
		{"valid slice", Partition{Total: 4, Owned: []int{0, 2}}, true},
		{"full ownership", Partition{Total: 2, Owned: []int{0, 1}}, true},
		{"single shard", Partition{Total: 1, Owned: []int{0}}, true},
		{"empty owned", Partition{Total: 4, Owned: nil}, false},
		{"out of range", Partition{Total: 4, Owned: []int{4}}, false},
		{"negative shard", Partition{Total: 4, Owned: []int{-1}}, false},
		{"total zero", Partition{Total: 0, Owned: []int{0}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEngineFromDB(testDB(20, 7), trajtree.Options{Seed: 1, LeafSize: 5},
				Options{CacheSize: -1, Partition: &tc.p})
			if tc.ok && err != nil {
				t.Fatalf("placement %+v rejected: %v", tc.p, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("placement %+v admitted", tc.p)
			}
		})
	}

	// Owned is documented as normalised, not validated: unsorted input
	// with duplicates resolves to the ascending deduplicated set.
	e, err := NewEngineFromDB(testDB(20, 7), trajtree.Options{Seed: 1, LeafSize: 5},
		Options{CacheSize: -1, Partition: &Partition{Total: 4, Owned: []int{3, 1, 3, 1}}})
	if err != nil {
		t.Fatalf("normalisable placement rejected: %v", err)
	}
	if got := e.OwnedShards(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("OwnedShards %v after normalisation, want [1 3]", got)
	}
	if e.Shards() != 2 {
		t.Fatalf("local shards %d after dedup, want 2", e.Shards())
	}
}

// TestPartitionFullOwnershipCollapses pins the identity case: owning
// every shard of the modulus is just a sharded standalone engine — the
// streaming layer and mutations must stay fully available.
func TestPartitionFullOwnershipCollapses(t *testing.T) {
	e := newTestEngine(t, 30, Options{CacheSize: -1, Partition: &Partition{Total: 4, Owned: []int{0, 1, 2, 3}}})
	if e.Partitioned() {
		t.Fatalf("full ownership reports Partitioned")
	}
	if e.Shards() != 4 || e.ClusterShards() != 4 {
		t.Fatalf("shards %d cluster %d, want 4/4", e.Shards(), e.ClusterShards())
	}
	if _, err := e.Append(10_000, 0, []traj.Point{traj.P(0, 0, 0), traj.P(1, 1, 10)}); err != nil {
		t.Fatalf("append on full ownership: %v", err)
	}
}

// TestPartitionedOwnership walks every ownership-gated surface of a
// true partition: foreign IDs are invisible to Lookup, rejected by
// mutations, and the streaming layer is offline entirely.
func TestPartitionedOwnership(t *testing.T) {
	db := testDB(60, 7)
	const total = 4
	owned := []int{1, 3}
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5},
		Options{CacheSize: -1, Partition: &Partition{Total: total, Owned: owned}})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !e.Partitioned() {
		t.Fatalf("partial ownership does not report Partitioned")
	}
	if e.ClusterShards() != total {
		t.Fatalf("ClusterShards %d, want %d", e.ClusterShards(), total)
	}
	if got := e.OwnedShards(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("OwnedShards %v, want %v", got, owned)
	}
	if e.Shards() != 2 {
		t.Fatalf("local shard count %d, want 2", e.Shards())
	}

	ownedCount := 0
	for _, tr := range db {
		g := ShardOf(tr.ID, total)
		isOwned := g == 1 || g == 3
		if e.Owns(tr.ID) != isOwned {
			t.Fatalf("Owns(%d)=%v, shard %d with owned %v", tr.ID, e.Owns(tr.ID), g, owned)
		}
		if got := e.Lookup(tr.ID); (got != nil) != isOwned {
			t.Fatalf("Lookup(%d) visible=%v, owned=%v", tr.ID, got != nil, isOwned)
		}
		if isOwned {
			ownedCount++
		}
	}
	if e.Size() != ownedCount {
		t.Fatalf("Size %d, want the %d owned trajectories", e.Size(), ownedCount)
	}

	// A foreign insert must bounce with ErrNotOwned, an owned one land.
	foreign := testDB(1, 555)[0]
	for id := 10_000; ; id++ {
		if g := ShardOf(id, total); g != 1 && g != 3 {
			foreign.ID = id
			break
		}
	}
	if err := e.Insert(foreign); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("foreign insert: %v, want ErrNotOwned", err)
	}
	local := testDB(1, 556)[0]
	for id := 20_000; ; id++ {
		if g := ShardOf(id, total); g == 1 || g == 3 {
			local.ID = id
			break
		}
	}
	if err := e.Insert(local); err != nil {
		t.Fatalf("owned insert: %v", err)
	}
	if e.Lookup(local.ID) == nil {
		t.Fatalf("owned insert not visible")
	}

	// Foreign delete reports absence without error.
	if e.Delete(foreign.ID) {
		t.Fatalf("foreign delete reported a deletion")
	}

	// Streaming is single-node this PR: partitioned engines refuse it.
	if _, err := e.Append(local.ID, 0, []traj.Point{traj.P(0, 0, 100)}); !errors.Is(err, backend.ErrNotSupported) {
		t.Fatalf("partitioned append: %v, want ErrNotSupported", err)
	}
	if _, err := e.Watch(db[0], "", 100, 1, false); !errors.Is(err, backend.ErrNotSupported) {
		t.Fatalf("partitioned watch: %v, want ErrNotSupported", err)
	}
}

// TestPartitionShardByteIdentity is the placement invariant snapshot
// shipping relies on: a node's local tree for global shard g is the
// same tree the single-process engine holds at position g, so shipped
// sections drop into any deployment shape.
func TestPartitionShardByteIdentity(t *testing.T) {
	db := testDB(80, 7)
	const total = 4
	single := newTestEngine(t, 80, Options{CacheSize: -1, Shards: total})
	node, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5},
		Options{CacheSize: -1, Partition: &Partition{Total: total, Owned: []int{2}}})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	// Same members...
	for _, tr := range db {
		if ShardOf(tr.ID, total) != 2 {
			continue
		}
		if node.Lookup(tr.ID) == nil {
			t.Fatalf("node missing shard-2 member %d", tr.ID)
		}
	}
	// ...and same answers for queries restricted to that shard's slice.
	for _, q := range testDB(4, 99) {
		req := Query{Kind: KindKNN, K: 3}
		want, err := single.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("single: %v", err)
		}
		got, err := node.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("node: %v", err)
		}
		// The node's answer must be exactly the shard-2 members of the
		// single engine's candidate ranking. Recompute by filtering the
		// single answer's full corpus ranking to shard 2.
		full, err := single.Search(context.Background(), q, Query{Kind: KindKNN, K: len(db)})
		if err != nil {
			t.Fatalf("full ranking: %v", err)
		}
		var filtered []int
		for _, r := range full.Results {
			if ShardOf(r.Traj.ID, total) == 2 && len(filtered) < req.K {
				filtered = append(filtered, r.Traj.ID)
			}
		}
		if len(got.Results) != len(filtered) {
			t.Fatalf("node answered %d results, want %d", len(got.Results), len(filtered))
		}
		for i, r := range got.Results {
			if r.Traj.ID != filtered[i] {
				t.Fatalf("rank %d: node id=%d, filtered single ranking id=%d", i, r.Traj.ID, filtered[i])
			}
		}
		_ = want
	}
}

// TestPartialSnapshotRoundTrip saves a partitioned node's snapshot and
// reloads it under the same, a conflicting, and a missing partition.
func TestPartialSnapshotRoundTrip(t *testing.T) {
	db := testDB(80, 7)
	const total = 4
	owned := []int{0, 2}
	dir := t.TempDir()
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5},
		Options{CacheSize: -1, Partition: &Partition{Total: total, Owned: owned}, SnapshotDir: dir})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.SaveSnapshot(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	info, err := ReadSnapshotInfo(dir)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Shards != total || len(info.Covered) != 2 {
		t.Fatalf("snapshot info %+v, want 4 shards, 2 covered", info)
	}

	// Same placement loads and matches.
	re, err := LoadSnapshot(dir, Options{CacheSize: -1, Partition: &Partition{Total: total, Owned: owned}})
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	defer re.Close()
	if re.Size() != e.Size() {
		t.Fatalf("reloaded %d trajectories, saved %d", re.Size(), e.Size())
	}

	// A conflicting modulus is rejected.
	if _, err := LoadSnapshot(dir, Options{CacheSize: -1, Partition: &Partition{Total: 8, Owned: owned}}); err == nil {
		t.Fatalf("mismatched Total admitted")
	}
	// Loading shards the manifest does not cover is rejected.
	if _, err := LoadSnapshot(dir, Options{CacheSize: -1, Partition: &Partition{Total: total, Owned: []int{1}}}); err == nil {
		t.Fatalf("uncovered shard admitted")
	}
	// An unpartitioned load of a partial manifest cannot serve the gaps.
	if _, err := LoadSnapshot(dir, Options{CacheSize: -1}); err == nil {
		t.Fatalf("unpartitioned load of a partial snapshot admitted")
	}
}
