// Package server wraps the TrajTree index in a sharded, thread-safe
// query engine and exposes it over HTTP. Trajectories hash to one of N
// independent trajtree.Tree shards (router.go), each behind its own
// RWMutex (shard.go), so Insert/Delete/Rebuild serialise per shard
// instead of stalling the whole index, and bulk builds construct shards
// in parallel. A k-NN query fans out across the shards sharing one
// atomically tightening k-th-best bound (trajtree.SharedBound): the
// moment any shard's local answer set fills, every other shard's dynamic
// programs abandon against that bound, and the per-shard answer lists
// merge by (distance, ID) — the same distances as the single-tree
// answer, with deterministic membership under exact boundary ties.
// Range queries fan the radius out and concatenate.
//
// On top sit a worker-pool batch API (KNNBatch), an LRU cache of k-NN
// answers invalidated through an engine-wide generation counter, and a
// versioned sharded snapshot (snapshot.go) that persists every shard
// plus a manifest and reloads into an identically answering engine.
//
// cmd/trajserve serves the Handler in this package; the trajmatch facade
// re-exports Engine for library users.
package server

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"trajmatch/internal/par"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// Options configure an Engine. The zero value is usable.
type Options struct {
	// CacheSize is the maximum number of k-NN answers kept in the LRU
	// cache. 0 means the default of 1024; negative disables caching.
	CacheSize int
	// Workers is the size of the KNNBatch worker pool, and the fan-out
	// width of a single query across shards. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Shards is the number of hash-partitioned index shards. 0 or 1
	// means a single shard (the pre-sharding engine); more shards mean
	// finer-grained update locking and parallel builds at the cost of a
	// per-query fan-out.
	Shards int
	// SnapshotDir, when non-empty, is where POST /snapshot writes the
	// sharded snapshot and where SaveSnapshot/LoadSnapshot default to.
	SnapshotDir string
}

const defaultCacheSize = 1024

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = defaultCacheSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// engineGen is the engine-wide generation counter. Every successful
// structural update bumps it *while still holding the written shard's
// write lock*; a query therefore can only observe updated data after the
// bump. The result cache exploits that ordering: a query records the
// generation before touching any shard and only caches its answer if the
// generation is unchanged afterwards, so every cached answer corresponds
// to a state no update completed inside.
type engineGen struct {
	v atomic.Uint64
}

func (g *engineGen) load() uint64 { return g.v.Load() }
func (g *engineGen) bump()        { g.v.Add(1) }

// Engine is a concurrency-safe sharded facade over trajtree. All methods
// may be called from any goroutine: queries take the read lock of each
// shard they visit, updates take only the owning shard's write lock, and
// the result cache carries its own mutex so a cache hit never touches a
// shard.
//
// With more than one shard, a query fanning out is *per-shard* atomic
// but not globally atomic: an Insert that completes between two shard
// visits may or may not appear in the answer, exactly as if the query
// had run entirely before or after it. Answers never mix partial states
// of a single update, because each update touches exactly one shard.
type Engine struct {
	opt    Options
	shards []*shard
	cache  *lruCache // nil when caching is disabled
	gen    engineGen
	snapMu sync.Mutex // serialises SaveSnapshot calls against each other

	queries   atomic.Uint64
	cacheHits atomic.Uint64
	inserts   atomic.Uint64
	deletes   atomic.Uint64
	rebuilds  atomic.Uint64
	snapshots atomic.Uint64

	// Cumulative per-query kernel instrumentation (trajtree.Stats summed
	// over every non-cached query and every shard it fanned out to),
	// surfaced on GET /stats so the benefit of the bounded distance
	// kernel is observable in production.
	distanceCalls   atomic.Uint64
	earlyAbandons   atomic.Uint64
	lowerBoundCalls atomic.Uint64
	nodesVisited    atomic.Uint64
	nodesPruned     atomic.Uint64
}

// recordQueryStats folds one query's instrumentation into the engine's
// cumulative counters.
func (e *Engine) recordQueryStats(st trajtree.Stats) {
	e.distanceCalls.Add(uint64(st.DistanceCalls))
	e.earlyAbandons.Add(uint64(st.EarlyAbandons))
	e.lowerBoundCalls.Add(uint64(st.LowerBoundCalls))
	e.nodesVisited.Add(uint64(st.NodesVisited))
	e.nodesPruned.Add(uint64(st.NodesPruned))
}

// newEngine wraps pre-built shards.
func newEngine(shards []*shard, opt Options) *Engine {
	e := &Engine{opt: opt, shards: shards}
	if opt.CacheSize > 0 {
		e.cache = newLRUCache(opt.CacheSize)
	}
	return e
}

// buildShards hash-partitions db and bulk-loads one tree per partition,
// constructing shards in parallel on the worker pool.
func buildShards(db []*traj.Trajectory, topt trajtree.Options, opt Options) ([]*shard, error) {
	groups := partitionByShard(db, opt.Shards, func(t *traj.Trajectory) int { return t.ID })
	shards := make([]*shard, opt.Shards)
	err := par.ForErr(opt.Workers, opt.Shards, func(i int) error {
		tree, err := trajtree.New(groups[i], topt)
		if err != nil {
			return err
		}
		shards[i] = &shard{tree: tree}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return shards, nil
}

// NewEngine wraps an existing tree. The caller must not use the tree
// directly afterwards; the engine owns it. With opt.Shards > 1 the
// tree's members are re-distributed across hash-placed shards built with
// the tree's own options (a rebuild, priced accordingly); with the
// default single shard the tree is adopted as-is.
func NewEngine(tree *trajtree.Tree, opt Options) *Engine {
	opt = opt.withDefaults()
	if opt.Shards > 1 {
		shards, err := buildShards(tree.All(), tree.Options(), opt)
		if err != nil {
			// Members of a valid tree are already validated and
			// duplicate-free, so buildShards cannot fail on them. If it
			// does, the invariant is broken — fail loudly rather than
			// silently serve with a shard count the caller did not ask
			// for.
			panic(fmt.Sprintf("server: resharding a valid tree failed: %v", err))
		}
		return newEngine(shards, opt)
	}
	return newEngine([]*shard{{tree: tree}}, opt)
}

// NewEngineFromDB bulk-loads hash-partitioned TrajTree shards over db
// and wraps them. Shards build in parallel across the worker pool.
func NewEngineFromDB(db []*traj.Trajectory, topt trajtree.Options, opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	shards, err := buildShards(db, topt, opt)
	if err != nil {
		return nil, err
	}
	return newEngine(shards, opt), nil
}

// Shards returns the number of index shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Size returns the number of indexed trajectories across all shards.
func (e *Engine) Size() int {
	total := 0
	for _, s := range e.shards {
		total += s.size()
	}
	return total
}

// Height returns the maximum shard height.
func (e *Engine) Height() int {
	max := 0
	for _, s := range e.shards {
		if h := s.height(); h > max {
			max = h
		}
	}
	return max
}

// Lookup returns the indexed trajectory with the given ID, or nil. The
// hash placement invariant routes it straight to the owning shard.
func (e *Engine) Lookup(id int) *traj.Trajectory {
	return e.shards[shardIndex(id, len(e.shards))].lookup(id)
}

// KNN answers an exact k-nearest-neighbour query, fanning out across the
// shards with a shared tightening bound. Cached answers are returned
// without touching any shard; the returned slice is shared with the
// cache and must not be mutated.
func (e *Engine) KNN(q *traj.Trajectory, k int) ([]trajtree.Result, trajtree.Stats) {
	res, st, _ := e.knn(q, k)
	return res, st
}

// knn is KNN plus a flag reporting whether the answer came from the
// cache — cache hits return zero Stats, which the HTTP layer surfaces
// rather than letting them pollute pruning measurements.
func (e *Engine) knn(q *traj.Trajectory, k int) ([]trajtree.Result, trajtree.Stats, bool) {
	res, st, cached := e.knnUnrecorded(q, k, true)
	if !cached {
		e.recordQueryStats(st)
	}
	return res, st, cached
}

// knnUnrecorded answers a k-NN query without folding its Stats into the
// engine's cumulative counters; KNNBatch uses it to flush one aggregate
// per batch instead of contending on the atomics once per query.
// concurrent selects between a goroutine fan-out across shards (single
// interactive queries) and an inline shard loop (batch workers, which
// are already saturating the pool — the inline loop still shares the
// bound, so later shards benefit from earlier shards' answers).
func (e *Engine) knnUnrecorded(q *traj.Trajectory, k int, concurrent bool) ([]trajtree.Result, trajtree.Stats, bool) {
	e.queries.Add(1)
	var key cacheKey
	gen := e.gen.load()
	if e.cache != nil {
		key = knnKey(q, k)
		if res, ok := e.cache.get(key, gen); ok {
			e.cacheHits.Add(1)
			return res, trajtree.Stats{}, true
		}
	}
	res, st := e.searchKNN(q, k, concurrent)
	// Only cache answers computed against a quiescent generation: if an
	// update completed mid-fan-out the answer is still correct (see the
	// Engine atomicity note) but may not correspond to any generation the
	// cache can name, so it is simply not cached.
	if e.cache != nil && e.gen.load() == gen {
		e.cache.put(key, gen, res)
	}
	return res, st, false
}

// mergeResults concatenates per-shard answer lists, folds their stats,
// and sorts by (distance, ID), keeping the best k when k >= 0 (pass a
// negative k to keep everything, the range-query case). The ID
// tie-break is the load-bearing determinism guarantee: it makes the
// merged answer a function of the candidate set alone, independent of
// shard count, shard order, and scheduling, even when distances tie
// exactly. (A single-shard engine bypasses the merge entirely — it is
// the plain tree search, whose boundary ties follow traversal order;
// see the sharding notes in docs/ARCHITECTURE.md.)
func mergeResults(per [][]trajtree.Result, sts []trajtree.Stats, k int) ([]trajtree.Result, trajtree.Stats) {
	var all []trajtree.Result
	var total trajtree.Stats
	for i, rs := range per {
		total.Add(sts[i])
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Traj.ID < all[j].Traj.ID
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all, total
}

// searchKNN fans the query out across the shards and merges the
// per-shard answers (each at most k long, so the merge sorts ≤ N·k
// candidates).
func (e *Engine) searchKNN(q *traj.Trajectory, k int, concurrent bool) ([]trajtree.Result, trajtree.Stats) {
	if len(e.shards) == 1 {
		return e.shards[0].knnShared(q, k, nil)
	}
	bound := trajtree.NewSharedBound(math.Inf(1))
	per := make([][]trajtree.Result, len(e.shards))
	sts := make([]trajtree.Stats, len(e.shards))
	run := func(i int) {
		per[i], sts[i] = e.shards[i].knnShared(q, k, bound)
	}
	if concurrent {
		par.For(e.opt.Workers, len(e.shards), run)
	} else {
		for i := range e.shards {
			run(i)
		}
	}
	return mergeResults(per, sts, k)
}

// RangeSearch returns every indexed trajectory within radius of q,
// sorted ascending. The radius itself seeds every shard's search — range
// fan-out needs no shared bound — and the per-shard lists concatenate
// and re-sort. Range answers are not cached: radii are continuous, so
// repeats are rare.
func (e *Engine) RangeSearch(q *traj.Trajectory, radius float64) ([]trajtree.Result, trajtree.Stats) {
	e.queries.Add(1)
	if len(e.shards) == 1 {
		res, st := e.shards[0].rangeSearch(q, radius)
		e.recordQueryStats(st)
		return res, st
	}
	per := make([][]trajtree.Result, len(e.shards))
	sts := make([]trajtree.Stats, len(e.shards))
	par.For(e.opt.Workers, len(e.shards), func(i int) {
		per[i], sts[i] = e.shards[i].rangeSearch(q, radius)
	})
	out, total := mergeResults(per, sts, -1)
	e.recordQueryStats(total)
	return out, total
}

// KNNBatch answers len(qs) independent k-NN queries on the engine's
// worker pool and returns the answers in input order. Each query visits
// shards under their read locks independently, so a concurrent Insert
// interleaves with a running batch instead of waiting for it to drain.
//
// Workers reuse scratch across their queries: the DP rows of the bounded
// EDwP kernel and the visited sets of the tree search live in sync.Pools
// whose per-P caches hand each worker its previous buffers back, so a
// batch performs no per-query scratch allocation. Per-query Stats are
// folded into the engine counters once per batch rather than once per
// query to keep the workers off the shared atomics.
func (e *Engine) KNNBatch(qs []*traj.Trajectory, k int) [][]trajtree.Result {
	out := make([][]trajtree.Result, len(qs))
	stats := make([]trajtree.Stats, len(qs))
	par.For(e.opt.Workers, len(qs), func(i int) {
		out[i], stats[i], _ = e.knnUnrecorded(qs[i], k, false)
	})
	var total trajtree.Stats
	for i := range stats {
		total.Add(stats[i])
	}
	e.recordQueryStats(total)
	return out
}

// Insert adds a trajectory to the index, blocking queries only on the
// owning shard for the duration of the update.
func (e *Engine) Insert(tr *traj.Trajectory) error {
	s := e.shards[shardIndex(tr.ID, len(e.shards))]
	if err := s.insert(tr, &e.gen); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	e.inserts.Add(1)
	return nil
}

// Delete removes the trajectory with the given ID, reporting whether it
// was present.
func (e *Engine) Delete(id int) bool {
	s := e.shards[shardIndex(id, len(e.shards))]
	if !s.delete(id, &e.gen) {
		return false
	}
	e.deletes.Add(1)
	return true
}

// Rebuild reconstructs every shard from its current members as a
// rolling update: shards rebuild strictly one at a time, so at any
// moment at most one shard is write-locked and queries keep flowing
// through the others (a k-NN fan-out stalls only on the shard currently
// rebuilding, not on the whole index). Availability is deliberately
// chosen over rebuild wall clock here — each shard's internal build
// still parallelises when the tree's Parallel option is set.
func (e *Engine) Rebuild() error {
	for _, s := range e.shards {
		if err := s.rebuild(&e.gen); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	e.rebuilds.Add(1)
	return nil
}

// ShardStats is one shard's slice of the index shape on GET /stats.
type ShardStats struct {
	Shard  int `json:"shard"`
	Size   int `json:"size"`
	Height int `json:"height"`
}

// Stats is a point-in-time snapshot of the engine's counters and index
// shape, the payload of GET /stats.
type Stats struct {
	Size      int    `json:"size"`
	Height    int    `json:"height"`
	Shards    int    `json:"shards"`
	Queries   uint64 `json:"queries"`
	CacheHits uint64 `json:"cache_hits"`
	CacheLen  int    `json:"cache_len"`
	Inserts   uint64 `json:"inserts"`
	Deletes   uint64 `json:"deletes"`
	Rebuilds  uint64 `json:"rebuilds"`
	Snapshots uint64 `json:"snapshots"`
	Workers   int    `json:"workers"`

	// PerShard breaks the index shape down by shard; Size is their sum
	// and Height their max.
	PerShard []ShardStats `json:"per_shard"`

	// Cumulative kernel instrumentation over all non-cached queries.
	// EarlyAbandons / DistanceCalls is the fraction of exact evaluations
	// the bounded kernel cut short.
	DistanceCalls   uint64 `json:"distance_calls"`
	EarlyAbandons   uint64 `json:"early_abandons"`
	LowerBoundCalls uint64 `json:"lower_bound_calls"`
	NodesVisited    uint64 `json:"nodes_visited"`
	NodesPruned     uint64 `json:"nodes_pruned"`
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:          len(e.shards),
		Queries:         e.queries.Load(),
		CacheHits:       e.cacheHits.Load(),
		Inserts:         e.inserts.Load(),
		Deletes:         e.deletes.Load(),
		Rebuilds:        e.rebuilds.Load(),
		Snapshots:       e.snapshots.Load(),
		Workers:         e.opt.Workers,
		DistanceCalls:   e.distanceCalls.Load(),
		EarlyAbandons:   e.earlyAbandons.Load(),
		LowerBoundCalls: e.lowerBoundCalls.Load(),
		NodesVisited:    e.nodesVisited.Load(),
		NodesPruned:     e.nodesPruned.Load(),
	}
	st.PerShard = make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		s.mu.RLock()
		size, h := s.tree.Size(), s.tree.Height()
		s.mu.RUnlock()
		st.PerShard[i] = ShardStats{Shard: i, Size: size, Height: h}
		st.Size += size
		if h > st.Height {
			st.Height = h
		}
	}
	if e.cache != nil {
		st.CacheLen = e.cache.len()
	}
	return st
}
