// Package server wraps pluggable metric indexes in a sharded,
// thread-safe query engine and exposes it over HTTP. The engine is
// generic over backend.Backend — the contract capturing what it actually
// needs (build from a DB, SearchKNN/SearchRange under a Ctl and a shared
// bound, unified Result/Stats) — and serves any number of metric
// backends over one corpus: the TrajTree EDwP index (the reference
// implementation, fully capable), the flat DTW and EDR indexes, and any
// future distance that implements the contract. Sharding, the
// shared-bound fan-out, the LRU result cache (keyed by metric), the
// cooperative cancellation paths and the stats counters are written once
// and are metric-agnostic; a metric registry routes Query.Metric to its
// loaded backend and distinguishes a mistyped name from one that was not
// booted.
//
// The query surface is one context-aware API: Engine.Search(ctx, q,
// Query) executes a Query (kind: KNN | Range | SubKNN, a Metric, plus
// knobs like a seed bound and an evaluation budget) and returns an
// Answer bundling results, stats and a truncation disposition;
// SearchBatch fans many query trajectories over a worker pool.
// Cancellation threads cooperatively through the whole stack — the shard
// fan-out skips un-started shards, the backend scans poll a flag between
// candidate evaluations, and the DP kernels poll it per row — so a fired
// deadline stops a query within one DP row of work. The per-variant
// methods (KNN, RangeSearch, KNNBatch) survive as thin deprecated
// wrappers with byte-identical answers.
//
// Trajectories hash to one of N shards per metric (router.go; placement
// is shared across metrics), each behind its own RWMutex (shard.go), so
// Insert/Delete/Rebuild serialise per shard instead of stalling the
// whole index, and bulk builds construct shards in parallel. A k-NN
// query fans out across its metric's shards sharing one atomically
// tightening k-th-best bound (backend.SharedBound): the moment any
// shard's local answer set fills, every other shard's dynamic programs
// abandon against that bound, and the per-shard answer lists merge by
// (distance, ID) — deterministic membership under exact boundary ties.
// Operations not every backend supports are capability-gated: mutation
// and persistence require the corresponding interfaces and otherwise
// degrade to ErrNotSupported (HTTP 501), and snapshot manifests record
// which metrics were persisted.
//
// cmd/trajserve serves the versioned HTTP surface in http.go (-metrics
// selects the backends); the trajmatch facade re-exports Engine for
// library users.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/faultfs"
	"trajmatch/internal/par"
	"trajmatch/internal/sketch"
	"trajmatch/internal/stream"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
	"trajmatch/internal/wal"
)

// Options configure an Engine. The zero value is usable.
type Options struct {
	// CacheSize is the maximum number of k-NN answers kept in the LRU
	// cache. 0 means the default of 1024; negative disables caching.
	CacheSize int
	// Workers is the size of the KNNBatch worker pool, and the fan-out
	// width of a single query across shards. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Shards is the number of hash-partitioned index shards per metric.
	// 0 or 1 means a single shard (the pre-sharding engine); more shards
	// mean finer-grained update locking and parallel builds at the cost
	// of a per-query fan-out. Ignored when Partition is set (the local
	// shard count is then len(Partition.Owned)).
	Shards int
	// Partition, when non-nil, makes this a cluster shard-node engine:
	// trajectories hash into Partition.Total global shards, the engine
	// builds and serves only the Partition.Owned subset, and operations
	// on foreign IDs answer ErrNotOwned. See the Partition type and
	// internal/cluster for the router that reassembles the subsets.
	Partition *Partition
	// SnapshotDir, when non-empty, is where POST /snapshot writes the
	// sharded snapshot and where SaveSnapshot/LoadSnapshot default to.
	SnapshotDir string
	// Mmap makes LoadSnapshot serve each shard straight from its
	// mmap-able arena file (shard-NNNN.arena) when one is present and
	// matches the manifest: the point slabs alias the page cache instead
	// of being deserialised, so a warm boot is O(members), not
	// O(samples). Any verification failure falls back per shard to the
	// gob stream — the loaded state is identical either way.
	Mmap bool
	// Prefilter builds the sketch/LSH candidate prefilter at boot: one
	// sketch index per shard, shared across every loaded metric.
	// Queries still opt in per request (Query.Prefilter) — an engine
	// with the prefilter enabled answers non-prefiltered queries
	// byte-identically to one without it.
	Prefilter bool
	// Sketch parameterises the prefilter; zero-value fields take the
	// sketch package defaults, and a zero CellSize is derived from the
	// full corpus before sharding (like EDR's ε, it is whole-corpus
	// state every shard must agree on). Ignored unless Prefilter is set
	// or a loaded snapshot recorded prefilter parameters.
	Sketch sketch.Params
	// WALDir, when non-empty, enables the write-ahead log: every
	// accepted mutation is appended (and, under WALSync's policy, made
	// durable) before it is acknowledged, and a boot replays the log on
	// top of the snapshot. See wal.go for the full durability story.
	WALDir string
	// WALSync selects when WAL appends reach stable storage; the zero
	// value is wal.SyncAlways (fsync before every acknowledgement).
	WALSync wal.SyncPolicy
	// WALSyncInterval is the fsync period under wal.SyncInterval;
	// 0 means the wal package default (100ms).
	WALSyncInterval time.Duration
	// WALSegmentBytes is the WAL segment rotation size; 0 means the
	// wal package default (64 MiB).
	WALSegmentBytes int64
	// FS routes every durability-layer file operation — WAL segments
	// and snapshot files. nil means the real filesystem; the
	// crash-recovery harness injects a faultfs.Injector here.
	FS faultfs.FS
	// SealAfter, when positive, arms the background sealer: a live track
	// with no append for SealAfter is folded into the sealed shards as
	// if POST /v1/seal had been called. 0 disables auto-sealing
	// (explicit seals only).
	SealAfter time.Duration
	// SealInterval is how often the background sealer scans for idle
	// tracks; 0 derives SealAfter/4 (at least a second).
	SealInterval time.Duration
	// EventBuffer is the match-event ring capacity — how far behind a
	// GET /v1/events consumer may fall before it is told it missed
	// events. 0 means stream.DefaultEventBuffer.
	EventBuffer int
}

const defaultCacheSize = 1024

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = defaultCacheSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	return o
}

// engineGen is the engine-wide generation counter. Every successful
// structural update bumps it *while still holding the written shard's
// write lock*; a query therefore can only observe updated data after the
// bump. The result cache exploits that ordering: a query records the
// generation before touching any shard and only caches its answer if the
// generation is unchanged afterwards, so every cached answer corresponds
// to a state no update completed inside.
type engineGen struct {
	v atomic.Uint64
}

func (g *engineGen) load() uint64 { return g.v.Load() }
func (g *engineGen) bump()        { g.v.Add(1) }

// Engine is a concurrency-safe sharded facade over one or more metric
// backends. All methods may be called from any goroutine: queries take
// the read lock of each shard they visit, updates take only the owning
// shards' write locks, and the result cache carries its own mutex so a
// cache hit never touches a shard.
//
// With more than one shard, a query fanning out is *per-shard* atomic
// but not globally atomic: an Insert that completes between two shard
// visits may or may not appear in the answer, exactly as if the query
// had run entirely before or after it. Answers never mix partial states
// of a single update, because each update touches exactly one shard per
// metric.
type Engine struct {
	opt    Options
	place  placement    // global hash modulus + owned-shard mapping
	sets   []*metricSet // boot order; sets[0] is the default metric
	byName map[string]*metricSet
	cache  *lruCache // nil when caching is disabled
	gen    engineGen
	snapMu sync.Mutex // serialises SaveSnapshot calls against each other

	// Durability (wal.go): fs routes every WAL and snapshot file
	// operation, wal is the write-ahead log (nil without Options.WALDir)
	// and mutMu serialises {WAL append, in-memory apply} so log order is
	// apply order. The fsync wait happens outside mutMu (group commit).
	fs    faultfs.FS
	wal   *wal.Log
	mutMu sync.Mutex

	// Live ingest (stream.go): buffer holds the growing unsealed
	// tracks, watches the standing queries, events the match feed.
	// Built by initStream before WAL replay; never nil after
	// construction. The sealer goroutine (when Options.SealAfter > 0)
	// folds idle tracks into the sealed shards.
	buffer   *stream.Buffer
	watches  *stream.Registry
	events   *stream.EventLog
	sealStop chan struct{}
	sealOnce sync.Once
	sealWG   sync.WaitGroup
	// replayGaps, during WAL replay only, records tracks whose head was
	// in a truncated segment (track ID -> the point count a later
	// carry-over record must restore); see replayRecord/checkReplayGaps.
	replayGaps map[int]int

	// sketches is the candidate prefilter: one sketch index per shard,
	// shared across metric sets (candidacy depends on geometry alone,
	// and every set shards the same corpus with the same placement).
	// nil when the prefilter is disabled. sketchParams holds the
	// resolved whole-corpus parameters the snapshot manifest records.
	sketches     []*sketch.Index
	sketchParams sketch.Params

	queries   atomic.Uint64
	cacheHits atomic.Uint64
	inserts   atomic.Uint64
	deletes   atomic.Uint64
	rebuilds  atomic.Uint64
	snapshots atomic.Uint64

	// Cumulative per-query kernel instrumentation (backend.Stats summed
	// over every non-cached query and every shard it fanned out to,
	// across all metrics; per-metric breakdowns live on the metric sets),
	// surfaced on GET /stats so the benefit of the bounded distance
	// kernels is observable in production.
	distanceCalls   atomic.Uint64
	earlyAbandons   atomic.Uint64
	lowerBoundCalls atomic.Uint64
	nodesVisited    atomic.Uint64
	nodesPruned     atomic.Uint64

	prefilterCandidates atomic.Uint64
	prefilterSkipped    atomic.Uint64

	// Streaming counters (stream.go): acknowledged appends and seals,
	// exact kernel evaluations the continuous-query matcher ran, and
	// (append, watch) pairs its token gate skipped.
	appends        atomic.Uint64
	seals          atomic.Uint64
	watchEvals     atomic.Uint64
	watchGateSkips atomic.Uint64
}

// recordQueryStats folds one query's instrumentation into the engine's
// cumulative counters and its metric's breakdown.
func (e *Engine) recordQueryStats(ms *metricSet, st backend.Stats) {
	e.distanceCalls.Add(uint64(st.DistanceCalls))
	e.earlyAbandons.Add(uint64(st.EarlyAbandons))
	e.lowerBoundCalls.Add(uint64(st.LowerBoundCalls))
	e.nodesVisited.Add(uint64(st.NodesVisited))
	e.nodesPruned.Add(uint64(st.NodesPruned))
	e.prefilterCandidates.Add(uint64(st.PrefilterCandidates))
	e.prefilterSkipped.Add(uint64(st.PrefilterSkipped))
	ms.recordStats(st)
}

// newEngine wraps pre-built metric sets under the given placement.
func newEngine(sets []*metricSet, place placement, opt Options) *Engine {
	e := &Engine{opt: opt, place: place, sets: sets, byName: make(map[string]*metricSet, len(sets))}
	e.fs = opt.FS
	if e.fs == nil {
		e.fs = faultfs.OS{}
	}
	for _, ms := range sets {
		e.byName[ms.name] = ms
	}
	if opt.CacheSize > 0 {
		e.cache = newLRUCache(opt.CacheSize)
	}
	return e
}

// NewEngine wraps an existing tree as a single-metric EDwP engine. The
// caller must not use the tree directly afterwards; the engine owns it.
// With opt.Shards > 1 the tree's members are re-distributed across
// hash-placed shards built with the tree's own options (a rebuild,
// priced accordingly); with the default single shard the tree is adopted
// as-is.
func NewEngine(tree *trajtree.Tree, opt Options) *Engine {
	opt = opt.withDefaults()
	place, perr := resolvePlacement(opt)
	if perr != nil {
		// This constructor predates the error-returning ones; a malformed
		// partition is a caller bug, not runtime state. Use
		// NewMultiEngineFromDB for a recoverable error path.
		panic(fmt.Sprintf("server: %v", perr))
	}
	opt.Shards = place.numLocal()
	var e *Engine
	if opt.Shards > 1 || place.partitioned() {
		sets, err := buildMetricSets(tree.All(), []backend.Spec{trajtree.BackendSpec(tree.Options())}, place, opt)
		if err != nil {
			// Members of a valid tree are already validated and
			// duplicate-free, so the build cannot fail on them. If it
			// does, the invariant is broken — fail loudly rather than
			// silently serve with a shard count the caller did not ask
			// for.
			panic(fmt.Sprintf("server: resharding a valid tree failed: %v", err))
		}
		e = newEngine(sets, place, opt)
	} else {
		set := &metricSet{name: trajtree.MetricName, shards: []*shard{{be: tree}}}
		e = newEngine([]*metricSet{set}, place, opt)
	}
	if opt.Prefilter {
		if err := e.enablePrefilter(tree.All(), opt.Sketch); err != nil {
			// Same invariant argument as resharding: valid members and
			// validated options cannot fail the sketch build.
			panic(fmt.Sprintf("server: building prefilter over a valid tree failed: %v", err))
		}
	}
	if err := e.attachWAL(); err != nil {
		// This constructor predates the error-returning ones and cannot
		// report failure; an unreadable or corrupt WAL must not be
		// silently dropped (that would discard acknowledged mutations),
		// so it fails loudly. Use NewMultiEngineFromDB or LoadSnapshot
		// for a recoverable error path.
		panic(fmt.Sprintf("server: opening write-ahead log: %v", err))
	}
	return e
}

// NewEngineFromDB bulk-loads hash-partitioned TrajTree shards over db
// and wraps them in a single-metric EDwP engine. Shards build in
// parallel across the worker pool.
func NewEngineFromDB(db []*traj.Trajectory, topt trajtree.Options, opt Options) (*Engine, error) {
	return NewMultiEngineFromDB(db, []backend.Spec{trajtree.BackendSpec(topt)}, opt)
}

// NewMultiEngineFromDB bulk-loads one sharded backend per spec over the
// same database and wraps them in one engine: every metric answers over
// the same corpus through the same Search API, routed by Query.Metric
// (the first spec is the default). Within each metric the shards build
// in parallel on the worker pool.
func NewMultiEngineFromDB(db []*traj.Trajectory, specs []backend.Spec, opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	place, err := resolvePlacement(opt)
	if err != nil {
		return nil, err
	}
	opt.Shards = place.numLocal()
	sets, err := buildMetricSets(db, specs, place, opt)
	if err != nil {
		return nil, err
	}
	e := newEngine(sets, place, opt)
	if opt.Prefilter {
		if err := e.enablePrefilter(db, opt.Sketch); err != nil {
			return nil, err
		}
	}
	if err := e.attachWAL(); err != nil {
		return nil, err
	}
	return e, nil
}

// Shards returns the number of locally held index shards per metric
// (the owned subset for a partitioned engine).
func (e *Engine) Shards() int { return len(e.sets[0].shards) }

// ClusterShards returns the global hash modulus: the cluster-wide shard
// count for a partitioned engine, the local shard count otherwise.
func (e *Engine) ClusterShards() int { return e.place.total }

// OwnedShards returns the global shard indices this engine serves,
// ascending (all of them for an unpartitioned engine).
func (e *Engine) OwnedShards() []int { return e.place.ownedShards() }

// Partitioned reports whether the engine serves a strict subset of the
// cluster's shards (Options.Partition).
func (e *Engine) Partitioned() bool { return e.place.partitioned() }

// Owns reports whether this engine is responsible for the given
// trajectory ID under the cluster placement.
func (e *Engine) Owns(id int) bool { return e.place.localShard(id) >= 0 }

// Size returns the number of indexed trajectories across all shards of
// the default metric (every metric indexes the same corpus).
func (e *Engine) Size() int {
	total := 0
	for _, s := range e.sets[0].shards {
		total += s.size()
	}
	return total
}

// Height returns the maximum shard height of the default metric's index
// (0 for flat backends).
func (e *Engine) Height() int {
	max := 0
	for _, s := range e.sets[0].shards {
		if h := s.height(); h > max {
			max = h
		}
	}
	return max
}

// Lookup returns the indexed trajectory with the given ID, or nil (also
// nil for IDs a partitioned engine does not own). The hash placement
// invariant routes it straight to the owning shard.
func (e *Engine) Lookup(id int) *traj.Trajectory {
	s := e.place.localShard(id)
	if s < 0 {
		return nil
	}
	return e.sets[0].shards[s].lookup(id)
}

// Search executes one Query against the index of the metric it names
// (Query.Metric; empty means the default metric), honouring ctx
// cooperatively through the whole stack: the shard fan-out skips
// un-started shards once ctx fires, the backend scans poll a
// cancellation flag between candidate evaluations, and the DP kernels
// poll it once per row — a fired context aborts the query within one DP
// row of work. A never-fired context leaves every answer byte-identical
// to the deprecated per-variant methods (property-tested), and — for the
// DTW/EDR backends — to their standalone indexes.
//
// On success the Answer carries the (distance, ID)-sorted results, the
// per-query stats when req.WithStats is set, and Truncated when a
// MaxEvals budget ran out before the search completed. On error — an
// unknown or unloaded metric (ErrUnknownMetric, ErrMetricNotLoaded), a
// capability the backend lacks (ErrNotSupported), ErrInvalidQuery for a
// malformed request, or ctx.Err() once the context fires — the Answer is
// empty; partial work already performed still lands in the engine's
// cumulative counters.
//
// Cached KNN answers are returned without touching any shard; the
// Results slice is then shared with the cache and must not be mutated.
func (e *Engine) Search(ctx context.Context, q *traj.Trajectory, req Query) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return Answer{}, fmt.Errorf("%w: nil query trajectory", ErrInvalidQuery)
	}
	if err := req.validate(); err != nil {
		return Answer{}, err
	}
	ms, err := e.resolveMetric(req.Metric)
	if err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	ans, raw, err := e.searchOne(ctx, ms, q, req, true)
	if !ans.Cached {
		e.recordQueryStats(ms, raw)
	}
	return ans, err
}

// SearchBatch executes the same Query for len(qs) independent query
// trajectories on the engine's worker pool, returning one Answer per
// query in input order — unlike the deprecated KNNBatch, per-query Stats
// survive (each Answer carries its own when req.WithStats is set). The
// engine's cumulative counters accumulate every query's work exactly
// once, flushed as one aggregate per batch to keep the workers off the
// shared atomics.
//
// All queries share ctx: once it fires, finished answers keep their
// values, un-started queries are skipped, and SearchBatch returns the
// partial answers alongside ctx's error. Workers reuse kernel and
// visit-set scratch from sync.Pools across their queries, so a batch
// performs no per-query scratch allocation.
func (e *Engine) SearchBatch(ctx context.Context, qs []*traj.Trajectory, req Query) ([]Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	ms, err := e.resolveMetric(req.Metric)
	if err != nil {
		return nil, err
	}
	for i, q := range qs {
		if q == nil {
			return nil, fmt.Errorf("%w: nil query trajectory at index %d", ErrInvalidQuery, i)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	answers := make([]Answer, len(qs))
	raws := make([]backend.Stats, len(qs))
	errs := make([]error, len(qs))
	par.For(e.opt.Workers, len(qs), func(i int) {
		answers[i], raws[i], errs[i] = e.searchOne(ctx, ms, qs[i], req, false)
	})
	var total backend.Stats
	for i := range raws {
		if !answers[i].Cached {
			total.Add(raws[i])
		}
	}
	e.recordQueryStats(ms, total)
	if err := ctx.Err(); err != nil {
		return answers, err
	}
	for _, err := range errs {
		if err != nil {
			return answers, err
		}
	}
	return answers, nil
}

// searchOne runs one query against one metric set without folding its
// stats into the engine counters (returned raw for the caller to record
// — once per query for Search, one aggregate per batch for SearchBatch).
// concurrent selects between a goroutine fan-out across shards (single
// interactive queries) and an inline shard loop (batch workers, which
// are already saturating the pool — the inline loop still shares the
// bound, so later shards benefit from earlier shards' answers).
func (e *Engine) searchOne(ctx context.Context, ms *metricSet, q *traj.Trajectory, req Query, concurrent bool) (Answer, backend.Stats, error) {
	e.queries.Add(1)
	ms.queries.Add(1)
	var key cacheKey
	gen := e.gen.load()
	useCache := e.cache != nil && req.cacheable()
	if useCache {
		key = knnKey(ms.name, q, req.K)
		if res, ok := e.cache.get(key, gen); ok {
			e.cacheHits.Add(1)
			ms.cacheHits.Add(1)
			return Answer{Results: res, Cached: true}, backend.Stats{}, nil
		}
	}
	// The Ctl is only armed when it can matter — a cancellable context or
	// an eval budget. Background-context, unbudgeted queries (the legacy
	// wrappers) run the exact pre-redesign path with a nil Ctl.
	var ctl *backend.Ctl
	if ctx.Done() != nil || req.MaxEvals > 0 {
		ctl = backend.NewCtl(ctx, req.MaxEvals)
		defer ctl.Release()
	}
	res, st, truncated, err := e.fanout(ms, q, req, ctl, concurrent)
	if err != nil {
		if errors.Is(err, backend.ErrNotSupported) {
			err = fmt.Errorf("metric %q: %w", ms.name, err)
		}
		return Answer{}, st, err
	}
	// Only cache answers computed against a quiescent generation: if an
	// update completed mid-fan-out the answer is still correct (see the
	// Engine atomicity note) but may not correspond to any generation the
	// cache can name, so it is simply not cached. Truncated answers are
	// never cached — they are not the exact KNN the key promises.
	if useCache && !truncated && e.gen.load() == gen {
		e.cache.put(key, gen, res)
	}
	ans := Answer{Results: res, Truncated: truncated}
	if req.WithStats {
		ans.Stats = st
	}
	return ans, st, nil
}

// fanout dispatches one validated query across its metric's shards and
// merges the per-shard answers. KNN kinds share one tightening bound
// (seeded with the query's Limit) so a close neighbour found in any
// shard abandons DP work in all the others; range queries are seeded by
// their radius and need no shared state. Once ctl fires, shards whose
// search has not started are skipped entirely and the merged answer is
// discarded.
func (e *Engine) fanout(ms *metricSet, q *traj.Trajectory, req Query, ctl *backend.Ctl, concurrent bool) ([]backend.Result, backend.Stats, bool, error) {
	shards := ms.shards
	if req.Prefilter && e.sketches == nil {
		return nil, backend.Stats{}, false,
			fmt.Errorf("prefilter %w (engine booted without Options.Prefilter)", backend.ErrNotSupported)
	}
	shardRun := func(i int, bound *backend.SharedBound) ([]backend.Result, backend.Stats, bool, error) {
		switch req.Kind {
		case KindRange:
			return shards[i].searchRange(q, req.Radius, ctl)
		case KindSubKNN:
			return shards[i].searchSub(q, req.K, bound, ctl)
		default: // KindKNN; validate guarantees the kind set
			if req.Prefilter {
				return e.prefilterShard(shards[i], e.sketches[i], q, req, bound, ctl)
			}
			return shards[i].searchKNN(q, req.K, bound, ctl)
		}
	}
	// One bound for both fan-out shapes: the k-NN kinds prune against a
	// tightening bound seeded with the query's Limit, range needs none
	// (its radius already is the bound). A single shard with no Limit
	// keeps the legacy nil-bound fast path instead of a +Inf bound it
	// could only tighten against itself.
	var bound *backend.SharedBound
	if req.Kind != KindRange {
		if limit := req.seedLimit(); !math.IsInf(limit, 1) {
			bound = backend.NewSharedBound(limit)
		} else if len(shards) > 1 {
			bound = backend.NewSharedBound(math.Inf(1))
		}
	}
	if len(shards) == 1 {
		res, st, truncated, err := shardRun(0, bound)
		if err != nil {
			return res, st, truncated, err
		}
		res, ltrunc, err := e.liveAugment(ms, q, req, res, ctl, &st)
		return res, st, truncated || ltrunc, err
	}
	per := make([][]backend.Result, len(shards))
	sts := make([]backend.Stats, len(shards))
	truncs := make([]bool, len(shards))
	errs := make([]error, len(shards))
	run := func(i int) {
		if ctl.Cancelled() {
			// Cancellation abort for shards whose search has not started;
			// already-running shards notice the same flag themselves.
			errs[i] = ctl.Err()
			return
		}
		per[i], sts[i], truncs[i], errs[i] = shardRun(i, bound)
	}
	if concurrent {
		par.For(e.opt.Workers, len(shards), run)
	} else {
		for i := range shards {
			run(i)
		}
	}
	// Fold stats before the error checks: partial work performed by
	// shards that ran before the cancellation still counts.
	var total backend.Stats
	truncated := false
	for i := range sts {
		total.Add(sts[i])
		truncated = truncated || truncs[i]
	}
	if err := ctl.Err(); err != nil {
		return nil, total, false, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, total, false, err
		}
	}
	k := req.K
	if req.Kind == KindRange {
		k = -1
	}
	res := mergeResults(per, k)
	res, ltrunc, err := e.liveAugment(ms, q, req, res, ctl, &total)
	return res, total, truncated || ltrunc, err
}

// mergeResults concatenates per-shard answer lists and sorts by
// (distance, ID), keeping the best k when k >= 0 (pass a negative k to
// keep everything, the range-query case). The ID tie-break is the
// load-bearing determinism guarantee: it makes the merged answer a
// function of the candidate set alone, independent of shard count, shard
// order, and scheduling, even when distances tie exactly — and the
// DTW/EDR backends resolve their internal ties by the same order, which
// is what makes a sharded fan-out byte-identical to the standalone
// index. (A single-shard EDwP engine bypasses the merge entirely — it is
// the plain tree search, whose boundary ties follow traversal order; see
// the sharding notes in docs/ARCHITECTURE.md.)
func mergeResults(per [][]backend.Result, k int) []backend.Result {
	var all []backend.Result
	for _, rs := range per {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Traj.ID < all[j].Traj.ID
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// KNN answers an exact k-nearest-neighbour query under the default
// metric, fanning out across the shards with a shared tightening bound.
//
// Deprecated: use Search with a KindKNN Query, which adds cancellation,
// seed bounds, evaluation budgets and metric selection. With a
// background context the answers are byte-identical.
func (e *Engine) KNN(q *traj.Trajectory, k int) ([]backend.Result, backend.Stats) {
	ans, _ := e.Search(context.Background(), q, Query{Kind: KindKNN, K: k, WithStats: true})
	return ans.Results, ans.Stats
}

// RangeSearch returns every indexed trajectory within radius of q under
// the default metric, sorted ascending.
//
// Deprecated: use Search with a KindRange Query.
func (e *Engine) RangeSearch(q *traj.Trajectory, radius float64) ([]backend.Result, backend.Stats) {
	ans, _ := e.Search(context.Background(), q, Query{Kind: KindRange, Radius: radius, WithStats: true})
	return ans.Results, ans.Stats
}

// KNNBatch answers len(qs) independent k-NN queries on the engine's
// worker pool and returns the answers in input order.
//
// Deprecated: use SearchBatch, which additionally returns per-query
// Stats and honours a context.
func (e *Engine) KNNBatch(qs []*traj.Trajectory, k int) [][]backend.Result {
	answers, err := e.SearchBatch(context.Background(), qs, Query{Kind: KindKNN, K: k})
	out := make([][]backend.Result, len(qs))
	if err != nil {
		return out // invalid k: every answer list empty, as before
	}
	for i, a := range answers {
		out[i] = a.Results
	}
	return out
}

// Insert adds a trajectory to every loaded metric's index, blocking
// queries only on the owning shards for the duration of the update. It
// requires every loaded backend to be mutable (capability
// backend.Mutable) — a partial update would let the metrics' views of
// the corpus diverge — and returns ErrNotSupported naming the first
// incapable metric otherwise.
//
// Metric sets update in boot order with no cross-metric transaction: if
// a later set rejects the trajectory (today only possible for invalid
// input, which every tree-backed set rejects identically before any
// state changes), earlier sets keep it and the error reports the
// divergence. A second mutable backend whose Insert can fail on valid
// input would need a rollback here.
// With a write-ahead log attached (Options.WALDir), the trajectory is
// validated and logged before any index changes, and Insert returns
// only after the record is durable per the configured sync policy — an
// acknowledged insert survives a crash.
func (e *Engine) Insert(tr *traj.Trajectory) error {
	if err := e.requireMutable(); err != nil {
		return err
	}
	if e.wal == nil {
		if tr != nil && e.buffer != nil && e.buffer.Has(tr.ID) {
			return fmt.Errorf("server: trajectory ID %d is a live track (seal or delete it first)", tr.ID)
		}
		if err := e.applyInsert(tr); err != nil {
			return err
		}
		e.inserts.Add(1)
		return nil
	}
	// The WAL must only ever hold mutations that will apply cleanly:
	// replay has no "reject" path short of failing the whole boot. So
	// every apply-side precondition — validity, uniqueness — is checked
	// before the append, under mutMu so no competing insert can sneak
	// the same ID in between check and apply.
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if e.place.localShard(tr.ID) < 0 {
		// Replay has no reject path, so a mutation the apply side would
		// refuse must never reach the log.
		return fmt.Errorf("server: trajectory ID %d hashes to global shard %d: %w",
			tr.ID, shardIndex(tr.ID, e.place.total), ErrNotOwned)
	}
	e.mutMu.Lock()
	if e.Lookup(tr.ID) != nil || (e.buffer != nil && e.buffer.Has(tr.ID)) {
		e.mutMu.Unlock()
		return fmt.Errorf("server: duplicate trajectory ID %d", tr.ID)
	}
	lsn, err := e.wal.Append(wal.Insert(tr))
	if err != nil {
		e.mutMu.Unlock()
		return fmt.Errorf("server: %w", err)
	}
	aerr := e.applyInsert(tr)
	e.mutMu.Unlock()
	if aerr != nil {
		return aerr
	}
	if err := e.wal.Commit(lsn); err != nil {
		// Applied in memory but not durable: the mutation is NOT
		// acknowledged. The log's sticky sync error has already fenced
		// off further mutations.
		return fmt.Errorf("server: %w", err)
	}
	e.inserts.Add(1)
	return nil
}

// applyInsert adds tr to every metric's owning shard and the sketch —
// the in-memory half of an insert, shared by the live path and WAL
// replay (which must not touch the log or the public counters).
func (e *Engine) applyInsert(tr *traj.Trajectory) error {
	local := 0
	if tr != nil {
		if local = e.place.localShard(tr.ID); local < 0 {
			return fmt.Errorf("server: trajectory ID %d hashes to global shard %d: %w",
				tr.ID, shardIndex(tr.ID, e.place.total), ErrNotOwned)
		}
	}
	for _, ms := range e.sets {
		if err := ms.shards[local].insert(tr, &e.gen); err != nil {
			return fmt.Errorf("server: metric %q: %w", ms.name, err)
		}
	}
	if e.sketches != nil {
		// Sketch membership follows the backends. Candidates are verified
		// by presence (SearchKNNIn skips unknown IDs), so the brief window
		// where the backends hold tr but the sketch does not merely means
		// tr is not yet a candidate — the same per-shard atomicity a
		// fanning-out query already tolerates.
		e.sketches[local].Insert(tr)
	}
	return nil
}

// Delete removes the trajectory with the given ID from every loaded
// metric's index, reporting whether it was present. Like Insert it
// requires every loaded backend to be mutable.
// With a write-ahead log attached, the delete is logged before the
// indexes change and reported true only once durable per the sync
// policy; an absent ID is answered false without logging anything.
func (e *Engine) Delete(id int) bool {
	if e.requireMutable() != nil {
		return false
	}
	if e.wal == nil {
		if !e.applyDelete(id) {
			return false
		}
		e.deletes.Add(1)
		return true
	}
	e.mutMu.Lock()
	if e.Lookup(id) == nil && (e.buffer == nil || !e.buffer.Has(id)) {
		e.mutMu.Unlock()
		return false
	}
	lsn, err := e.wal.Append(wal.Delete(id))
	if err != nil {
		e.mutMu.Unlock()
		return false
	}
	present := e.applyDelete(id)
	e.mutMu.Unlock()
	if err := e.wal.Commit(lsn); err != nil {
		// Deleted in memory but the record may not survive a crash; the
		// signature leaves no way to say more than "not acknowledged".
		return false
	}
	if !present {
		return false
	}
	e.deletes.Add(1)
	return true
}

// applyDelete removes id from every metric's owning shard and the
// sketch, reporting presence — the in-memory half of a delete, shared
// by the live path and WAL replay. A live (unsealed) track with the ID
// is dropped from the buffer instead, along with any top-k watch
// answer entries it earned.
func (e *Engine) applyDelete(id int) bool {
	local := e.place.localShard(id)
	if local < 0 {
		return false // a foreign ID is never present here
	}
	present := false
	for _, ms := range e.sets {
		ok, err := ms.shards[local].delete(id, &e.gen)
		if err != nil {
			return false
		}
		present = present || ok
	}
	if e.buffer != nil {
		if _, ok := e.buffer.Remove(id); ok {
			present = true
			for _, w := range e.watches.After(0) {
				if w.K > 0 {
					w.Drop(id)
				}
			}
		}
	}
	if !present {
		return false
	}
	if e.sketches != nil {
		// After this the deleted ID can never be a candidate again;
		// during the window between backend delete and here a stale
		// candidate is skipped by presence verification.
		e.sketches[local].Delete(id)
	}
	return true
}

// CanMutate reports whether the engine accepts Insert/Delete/Rebuild:
// nil when every loaded backend is mutable, otherwise an ErrNotSupported
// error naming the first metric that is not. The HTTP layer gates the
// update endpoints on it (501 not_implemented).
func (e *Engine) CanMutate() error { return e.requireMutable() }

// requireMutable returns ErrNotSupported naming the first loaded metric
// whose backend cannot be updated in place.
func (e *Engine) requireMutable() error {
	for _, ms := range e.sets {
		if !ms.mutable() {
			return fmt.Errorf("server: metric %q: mutation %w", ms.name, backend.ErrNotSupported)
		}
	}
	return nil
}

// Rebuild reconstructs every shard of every mutable metric from its
// current members as a rolling update: shards rebuild strictly one at a
// time, so at any moment at most one shard is write-locked and queries
// keep flowing through the others (a k-NN fan-out stalls only on the
// shard currently rebuilding, not on the whole index). Availability is
// deliberately chosen over rebuild wall clock here — each shard's
// internal build still parallelises when the tree's Parallel option is
// set. Like Insert it requires every loaded backend to be mutable.
func (e *Engine) Rebuild() error {
	if err := e.requireMutable(); err != nil {
		return err
	}
	for _, ms := range e.sets {
		for _, s := range ms.shards {
			if err := s.rebuild(&e.gen); err != nil {
				return fmt.Errorf("server: metric %q: %w", ms.name, err)
			}
		}
	}
	e.rebuilds.Add(1)
	return nil
}

// ShardStats is one shard's slice of the index shape on GET /stats.
type ShardStats struct {
	Shard  int `json:"shard"`
	Size   int `json:"size"`
	Height int `json:"height"`
	// Mem is the shard's memory layout: arena slab residency (bytes,
	// member and sample counts, mmap versus heap), the overlay count
	// (members inserted since the last rebuild, not yet slab-resident),
	// and how many rebuilds have folded an overlay in. Tree-backed
	// shards only.
	Mem *trajtree.MemStats `json:"mem,omitempty"`
}

// MetricStats is one loaded metric's slice of the engine counters on
// GET /stats: its capability set plus the traffic and kernel
// instrumentation accumulated over its queries.
type MetricStats struct {
	Metric       string   `json:"metric"`
	Capabilities []string `json:"capabilities"`
	Queries      uint64   `json:"queries"`
	CacheHits    uint64   `json:"cache_hits"`

	DistanceCalls   uint64 `json:"distance_calls"`
	EarlyAbandons   uint64 `json:"early_abandons"`
	LowerBoundCalls uint64 `json:"lower_bound_calls"`
	NodesVisited    uint64 `json:"nodes_visited"`
	NodesPruned     uint64 `json:"nodes_pruned"`

	PrefilterCandidates uint64 `json:"prefilter_candidates,omitempty"`
	PrefilterSkipped    uint64 `json:"prefilter_skipped,omitempty"`
}

// Stats is a point-in-time snapshot of the engine's counters and index
// shape, the payload of GET /stats.
type Stats struct {
	Size   int `json:"size"`
	Height int `json:"height"`
	Shards int `json:"shards"`
	// ClusterShards and OwnedShards appear on partitioned engines only:
	// the global hash modulus and the owned global indices (Shards then
	// counts the owned subset).
	ClusterShards int      `json:"cluster_shards,omitempty"`
	OwnedShards   []int    `json:"owned_shards,omitempty"`
	Metrics       []string `json:"metrics"`
	Queries       uint64   `json:"queries"`
	CacheHits     uint64   `json:"cache_hits"`
	CacheLen      int      `json:"cache_len"`
	Inserts       uint64   `json:"inserts"`
	Deletes       uint64   `json:"deletes"`
	Rebuilds      uint64   `json:"rebuilds"`
	Snapshots     uint64   `json:"snapshots"`
	Workers       int      `json:"workers"`

	// PerShard breaks the default metric's index shape down by shard;
	// Size is their sum and Height their max.
	PerShard []ShardStats `json:"per_shard"`

	// PerMetric breaks the traffic and kernel counters down by loaded
	// metric, in boot order (the first is the default metric).
	PerMetric []MetricStats `json:"per_metric"`

	// Cumulative kernel instrumentation over all non-cached queries of
	// all metrics. EarlyAbandons / DistanceCalls is the fraction of exact
	// evaluations the bounded kernels cut short.
	DistanceCalls   uint64 `json:"distance_calls"`
	EarlyAbandons   uint64 `json:"early_abandons"`
	LowerBoundCalls uint64 `json:"lower_bound_calls"`
	NodesVisited    uint64 `json:"nodes_visited"`
	NodesPruned     uint64 `json:"nodes_pruned"`

	// Prefilter reports whether the sketch/LSH candidate prefilter is
	// enabled; the counters accumulate over prefiltered queries only —
	// PrefilterSkipped / (PrefilterCandidates + PrefilterSkipped) is the
	// fraction of the corpus the sketch excluded before any exact work.
	Prefilter           bool   `json:"prefilter"`
	PrefilterCandidates uint64 `json:"prefilter_candidates,omitempty"`
	PrefilterSkipped    uint64 `json:"prefilter_skipped,omitempty"`

	// WAL carries the write-ahead log's counters and on-disk shape
	// (appends, fsyncs, group-commit batching, recovery tallies);
	// absent when the engine runs without a WAL.
	WAL *wal.Stats `json:"wal,omitempty"`

	// Stream carries the live-ingest counters: buffer size, append and
	// seal tallies, standing-query fan-out and the token gate's savings.
	Stream *StreamStats `json:"stream,omitempty"`
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:          len(e.sets[0].shards),
		Metrics:         e.Metrics(),
		Queries:         e.queries.Load(),
		CacheHits:       e.cacheHits.Load(),
		Inserts:         e.inserts.Load(),
		Deletes:         e.deletes.Load(),
		Rebuilds:        e.rebuilds.Load(),
		Snapshots:       e.snapshots.Load(),
		Workers:         e.opt.Workers,
		DistanceCalls:   e.distanceCalls.Load(),
		EarlyAbandons:   e.earlyAbandons.Load(),
		LowerBoundCalls: e.lowerBoundCalls.Load(),
		NodesVisited:    e.nodesVisited.Load(),
		NodesPruned:     e.nodesPruned.Load(),

		Prefilter:           e.sketches != nil,
		PrefilterCandidates: e.prefilterCandidates.Load(),
		PrefilterSkipped:    e.prefilterSkipped.Load(),
	}
	if e.place.partitioned() {
		st.ClusterShards = e.place.total
		st.OwnedShards = e.place.ownedShards()
	}
	st.PerShard = make([]ShardStats, len(e.sets[0].shards))
	for i, s := range e.sets[0].shards {
		size, h := s.size(), s.height()
		st.PerShard[i] = ShardStats{Shard: e.place.globalOf(i), Size: size, Height: h, Mem: s.memStats()}
		st.Size += size
		if h > st.Height {
			st.Height = h
		}
	}
	st.PerMetric = make([]MetricStats, len(e.sets))
	for i, ms := range e.sets {
		st.PerMetric[i] = MetricStats{
			Metric:          ms.name,
			Capabilities:    ms.capabilities(e.sketches != nil),
			Queries:         ms.queries.Load(),
			CacheHits:       ms.cacheHits.Load(),
			DistanceCalls:   ms.distanceCalls.Load(),
			EarlyAbandons:   ms.earlyAbandons.Load(),
			LowerBoundCalls: ms.lowerBoundCalls.Load(),
			NodesVisited:    ms.nodesVisited.Load(),
			NodesPruned:     ms.nodesPruned.Load(),

			PrefilterCandidates: ms.prefilterCandidates.Load(),
			PrefilterSkipped:    ms.prefilterSkipped.Load(),
		}
	}
	if e.cache != nil {
		st.CacheLen = e.cache.len()
	}
	if e.wal != nil {
		ws := e.wal.Stats()
		st.WAL = &ws
	}
	st.Stream = e.streamStats()
	return st
}
