// Package server wraps the TrajTree index in a thread-safe query engine
// and exposes it over HTTP. The engine serialises the index's update path
// (Insert, Delete, Rebuild) behind the write side of an RWMutex while KNN
// and RangeSearch reads proceed concurrently on the read side — the Tree
// itself is safe for any number of simultaneous queries, so readers never
// block each other. On top of that sit a worker-pool batch API (KNNBatch)
// that fans independent queries across GOMAXPROCS goroutines, and an LRU
// cache of k-NN answers keyed by a hash of the query geometry, invalidated
// through the tree's generation counter rather than by eager flushing.
//
// cmd/trajserve serves the Handler in this package; the trajmatch facade
// re-exports Engine for library users.
package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"trajmatch/internal/par"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// Options configure an Engine. The zero value is usable.
type Options struct {
	// CacheSize is the maximum number of k-NN answers kept in the LRU
	// cache. 0 means the default of 1024; negative disables caching.
	CacheSize int
	// Workers is the size of the KNNBatch worker pool. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

const defaultCacheSize = 1024

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = defaultCacheSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Engine is a concurrency-safe facade over a trajtree.Tree. All methods
// may be called from any goroutine: queries share a read lock, updates
// take the write lock, and the result cache carries its own mutex so a
// cache hit never touches the tree.
type Engine struct {
	opt   Options
	mu    sync.RWMutex // guards tree structure: RLock for queries, Lock for updates
	tree  *trajtree.Tree
	cache *lruCache // nil when caching is disabled

	queries   atomic.Uint64
	cacheHits atomic.Uint64
	inserts   atomic.Uint64
	deletes   atomic.Uint64
	rebuilds  atomic.Uint64

	// Cumulative per-query kernel instrumentation (trajtree.Stats summed
	// over every non-cached query), surfaced on GET /stats so the benefit
	// of the bounded distance kernel is observable in production.
	distanceCalls   atomic.Uint64
	earlyAbandons   atomic.Uint64
	lowerBoundCalls atomic.Uint64
	nodesVisited    atomic.Uint64
	nodesPruned     atomic.Uint64
}

// recordQueryStats folds one query's instrumentation into the engine's
// cumulative counters.
func (e *Engine) recordQueryStats(st trajtree.Stats) {
	e.distanceCalls.Add(uint64(st.DistanceCalls))
	e.earlyAbandons.Add(uint64(st.EarlyAbandons))
	e.lowerBoundCalls.Add(uint64(st.LowerBoundCalls))
	e.nodesVisited.Add(uint64(st.NodesVisited))
	e.nodesPruned.Add(uint64(st.NodesPruned))
}

// NewEngine wraps an existing tree. The caller must not use the tree
// directly afterwards; the engine owns it.
func NewEngine(tree *trajtree.Tree, opt Options) *Engine {
	opt = opt.withDefaults()
	e := &Engine{opt: opt, tree: tree}
	if opt.CacheSize > 0 {
		e.cache = newLRUCache(opt.CacheSize)
	}
	return e
}

// NewEngineFromDB bulk-loads a TrajTree over db and wraps it.
func NewEngineFromDB(db []*traj.Trajectory, topt trajtree.Options, opt Options) (*Engine, error) {
	tree, err := trajtree.New(db, topt)
	if err != nil {
		return nil, err
	}
	return NewEngine(tree, opt), nil
}

// Size returns the number of indexed trajectories.
func (e *Engine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tree.Size()
}

// Height returns the index height.
func (e *Engine) Height() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tree.Height()
}

// Lookup returns the indexed trajectory with the given ID, or nil.
func (e *Engine) Lookup(id int) *traj.Trajectory {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tree.Lookup(id)
}

// KNN answers an exact k-nearest-neighbour query. Cached answers are
// returned without touching the tree; the returned slice is shared with
// the cache and must not be mutated.
func (e *Engine) KNN(q *traj.Trajectory, k int) ([]trajtree.Result, trajtree.Stats) {
	res, st, _ := e.knn(q, k)
	return res, st
}

// knn is KNN plus a flag reporting whether the answer came from the
// cache — cache hits return zero Stats, which the HTTP layer surfaces
// rather than letting them pollute pruning measurements.
func (e *Engine) knn(q *traj.Trajectory, k int) ([]trajtree.Result, trajtree.Stats, bool) {
	res, st, cached := e.knnUnrecorded(q, k)
	if !cached {
		e.recordQueryStats(st)
	}
	return res, st, cached
}

// knnUnrecorded answers a k-NN query without folding its Stats into the
// engine's cumulative counters; KNNBatch uses it to flush one aggregate
// per batch instead of contending on the atomics once per query.
func (e *Engine) knnUnrecorded(q *traj.Trajectory, k int) ([]trajtree.Result, trajtree.Stats, bool) {
	e.queries.Add(1)
	var key cacheKey
	if e.cache != nil {
		key = knnKey(q, k)
		e.mu.RLock()
		gen := e.tree.Generation()
		e.mu.RUnlock()
		if res, ok := e.cache.get(key, gen); ok {
			e.cacheHits.Add(1)
			return res, trajtree.Stats{}, true
		}
	}
	e.mu.RLock()
	res, st := e.tree.KNN(q, k)
	gen := e.tree.Generation()
	e.mu.RUnlock()
	if e.cache != nil {
		e.cache.put(key, gen, res)
	}
	return res, st, false
}

// RangeSearch returns every indexed trajectory within radius of q, sorted
// ascending. Range answers are not cached: radii are continuous, so
// repeats are rare.
func (e *Engine) RangeSearch(q *traj.Trajectory, radius float64) ([]trajtree.Result, trajtree.Stats) {
	e.queries.Add(1)
	e.mu.RLock()
	defer e.mu.RUnlock() // deferred so a panicking query cannot leak the lock
	res, st := e.tree.RangeSearch(q, radius)
	e.recordQueryStats(st) // atomics; safe under the read lock
	return res, st
}

// KNNBatch answers len(qs) independent k-NN queries on the engine's
// worker pool and returns the answers in input order. Each query acquires
// the read lock independently, so a concurrent Insert interleaves with a
// running batch instead of waiting for it to drain.
//
// Workers reuse scratch across their queries: the DP rows of the bounded
// EDwP kernel and the visited sets of the tree search live in sync.Pools
// whose per-P caches hand each worker its previous buffers back, so a
// batch performs no per-query scratch allocation. Per-query Stats are
// folded into the engine counters once per batch rather than once per
// query to keep the workers off the shared atomics.
func (e *Engine) KNNBatch(qs []*traj.Trajectory, k int) [][]trajtree.Result {
	out := make([][]trajtree.Result, len(qs))
	stats := make([]trajtree.Stats, len(qs))
	par.For(e.opt.Workers, len(qs), func(i int) {
		out[i], stats[i], _ = e.knnUnrecorded(qs[i], k)
	})
	var total trajtree.Stats
	for i := range stats {
		total.Add(stats[i])
	}
	e.recordQueryStats(total)
	return out
}

// Insert adds a trajectory to the index, blocking queries for the
// duration of the update.
func (e *Engine) Insert(tr *traj.Trajectory) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.tree.Insert(tr); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	e.inserts.Add(1)
	return nil
}

// Delete removes the trajectory with the given ID, reporting whether it
// was present.
func (e *Engine) Delete(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.tree.Delete(id) {
		return false
	}
	e.deletes.Add(1)
	return true
}

// Rebuild reconstructs the index from its current members.
func (e *Engine) Rebuild() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.tree.Rebuild(); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	e.rebuilds.Add(1)
	return nil
}

// Stats is a point-in-time snapshot of the engine's counters and index
// shape, the payload of GET /stats.
type Stats struct {
	Size      int    `json:"size"`
	Height    int    `json:"height"`
	Queries   uint64 `json:"queries"`
	CacheHits uint64 `json:"cache_hits"`
	CacheLen  int    `json:"cache_len"`
	Inserts   uint64 `json:"inserts"`
	Deletes   uint64 `json:"deletes"`
	Rebuilds  uint64 `json:"rebuilds"`
	Workers   int    `json:"workers"`

	// Cumulative kernel instrumentation over all non-cached queries.
	// EarlyAbandons / DistanceCalls is the fraction of exact evaluations
	// the bounded kernel cut short.
	DistanceCalls   uint64 `json:"distance_calls"`
	EarlyAbandons   uint64 `json:"early_abandons"`
	LowerBoundCalls uint64 `json:"lower_bound_calls"`
	NodesVisited    uint64 `json:"nodes_visited"`
	NodesPruned     uint64 `json:"nodes_pruned"`
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	size, h := e.tree.Size(), e.tree.Height()
	e.mu.RUnlock()
	st := Stats{
		Size:            size,
		Height:          h,
		Queries:         e.queries.Load(),
		CacheHits:       e.cacheHits.Load(),
		Inserts:         e.inserts.Load(),
		Deletes:         e.deletes.Load(),
		Rebuilds:        e.rebuilds.Load(),
		Workers:         e.opt.Workers,
		DistanceCalls:   e.distanceCalls.Load(),
		EarlyAbandons:   e.earlyAbandons.Load(),
		LowerBoundCalls: e.lowerBoundCalls.Load(),
		NodesVisited:    e.nodesVisited.Load(),
		NodesPruned:     e.nodesPruned.Load(),
	}
	if e.cache != nil {
		st.CacheLen = e.cache.len()
	}
	return st
}
