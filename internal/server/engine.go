// Package server wraps the TrajTree index in a sharded, thread-safe
// query engine and exposes it over HTTP. The query surface is one
// context-aware API: Engine.Search(ctx, q, Query) executes a Query
// (kind: KNN | Range | SubKNN, plus knobs like a seed bound and an
// evaluation budget) and returns an Answer bundling results, stats and a
// truncation disposition; SearchBatch fans many query trajectories over
// a worker pool. Cancellation threads cooperatively through the whole
// stack — the shard fan-out skips un-started shards, the tree search
// polls a flag between candidate pops, and the EDwP kernel polls it per
// DP row — so a fired deadline stops a query within one DP row of work.
// The per-variant methods (KNN, RangeSearch, KNNBatch) survive as thin
// deprecated wrappers with byte-identical answers.
//
// Trajectories hash to one of N independent trajtree.Tree shards
// (router.go), each behind its own RWMutex (shard.go), so
// Insert/Delete/Rebuild serialise per shard instead of stalling the
// whole index, and bulk builds construct shards in parallel. A k-NN
// query fans out across the shards sharing one atomically tightening
// k-th-best bound (trajtree.SharedBound): the moment any shard's local
// answer set fills, every other shard's dynamic programs abandon against
// that bound, and the per-shard answer lists merge by (distance, ID) —
// the same distances as the single-tree answer, with deterministic
// membership under exact boundary ties. Range queries fan the radius out
// and concatenate; sub-trajectory queries fan a bounded EDwPsub scan.
//
// On top sit an LRU cache of k-NN answers invalidated through an
// engine-wide generation counter, and a versioned sharded snapshot
// (snapshot.go) that persists every shard plus a manifest and reloads
// into an identically answering engine.
//
// cmd/trajserve serves the versioned HTTP surface in http.go; the
// trajmatch facade re-exports Engine for library users.
package server

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"trajmatch/internal/par"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// Options configure an Engine. The zero value is usable.
type Options struct {
	// CacheSize is the maximum number of k-NN answers kept in the LRU
	// cache. 0 means the default of 1024; negative disables caching.
	CacheSize int
	// Workers is the size of the KNNBatch worker pool, and the fan-out
	// width of a single query across shards. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Shards is the number of hash-partitioned index shards. 0 or 1
	// means a single shard (the pre-sharding engine); more shards mean
	// finer-grained update locking and parallel builds at the cost of a
	// per-query fan-out.
	Shards int
	// SnapshotDir, when non-empty, is where POST /snapshot writes the
	// sharded snapshot and where SaveSnapshot/LoadSnapshot default to.
	SnapshotDir string
}

const defaultCacheSize = 1024

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = defaultCacheSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// engineGen is the engine-wide generation counter. Every successful
// structural update bumps it *while still holding the written shard's
// write lock*; a query therefore can only observe updated data after the
// bump. The result cache exploits that ordering: a query records the
// generation before touching any shard and only caches its answer if the
// generation is unchanged afterwards, so every cached answer corresponds
// to a state no update completed inside.
type engineGen struct {
	v atomic.Uint64
}

func (g *engineGen) load() uint64 { return g.v.Load() }
func (g *engineGen) bump()        { g.v.Add(1) }

// Engine is a concurrency-safe sharded facade over trajtree. All methods
// may be called from any goroutine: queries take the read lock of each
// shard they visit, updates take only the owning shard's write lock, and
// the result cache carries its own mutex so a cache hit never touches a
// shard.
//
// With more than one shard, a query fanning out is *per-shard* atomic
// but not globally atomic: an Insert that completes between two shard
// visits may or may not appear in the answer, exactly as if the query
// had run entirely before or after it. Answers never mix partial states
// of a single update, because each update touches exactly one shard.
type Engine struct {
	opt    Options
	shards []*shard
	cache  *lruCache // nil when caching is disabled
	gen    engineGen
	snapMu sync.Mutex // serialises SaveSnapshot calls against each other

	queries   atomic.Uint64
	cacheHits atomic.Uint64
	inserts   atomic.Uint64
	deletes   atomic.Uint64
	rebuilds  atomic.Uint64
	snapshots atomic.Uint64

	// Cumulative per-query kernel instrumentation (trajtree.Stats summed
	// over every non-cached query and every shard it fanned out to),
	// surfaced on GET /stats so the benefit of the bounded distance
	// kernel is observable in production.
	distanceCalls   atomic.Uint64
	earlyAbandons   atomic.Uint64
	lowerBoundCalls atomic.Uint64
	nodesVisited    atomic.Uint64
	nodesPruned     atomic.Uint64
}

// recordQueryStats folds one query's instrumentation into the engine's
// cumulative counters.
func (e *Engine) recordQueryStats(st trajtree.Stats) {
	e.distanceCalls.Add(uint64(st.DistanceCalls))
	e.earlyAbandons.Add(uint64(st.EarlyAbandons))
	e.lowerBoundCalls.Add(uint64(st.LowerBoundCalls))
	e.nodesVisited.Add(uint64(st.NodesVisited))
	e.nodesPruned.Add(uint64(st.NodesPruned))
}

// newEngine wraps pre-built shards.
func newEngine(shards []*shard, opt Options) *Engine {
	e := &Engine{opt: opt, shards: shards}
	if opt.CacheSize > 0 {
		e.cache = newLRUCache(opt.CacheSize)
	}
	return e
}

// buildShards hash-partitions db and bulk-loads one tree per partition,
// constructing shards in parallel on the worker pool.
func buildShards(db []*traj.Trajectory, topt trajtree.Options, opt Options) ([]*shard, error) {
	groups := partitionByShard(db, opt.Shards, func(t *traj.Trajectory) int { return t.ID })
	shards := make([]*shard, opt.Shards)
	err := par.ForErr(opt.Workers, opt.Shards, func(i int) error {
		tree, err := trajtree.New(groups[i], topt)
		if err != nil {
			return err
		}
		shards[i] = &shard{tree: tree}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return shards, nil
}

// NewEngine wraps an existing tree. The caller must not use the tree
// directly afterwards; the engine owns it. With opt.Shards > 1 the
// tree's members are re-distributed across hash-placed shards built with
// the tree's own options (a rebuild, priced accordingly); with the
// default single shard the tree is adopted as-is.
func NewEngine(tree *trajtree.Tree, opt Options) *Engine {
	opt = opt.withDefaults()
	if opt.Shards > 1 {
		shards, err := buildShards(tree.All(), tree.Options(), opt)
		if err != nil {
			// Members of a valid tree are already validated and
			// duplicate-free, so buildShards cannot fail on them. If it
			// does, the invariant is broken — fail loudly rather than
			// silently serve with a shard count the caller did not ask
			// for.
			panic(fmt.Sprintf("server: resharding a valid tree failed: %v", err))
		}
		return newEngine(shards, opt)
	}
	return newEngine([]*shard{{tree: tree}}, opt)
}

// NewEngineFromDB bulk-loads hash-partitioned TrajTree shards over db
// and wraps them. Shards build in parallel across the worker pool.
func NewEngineFromDB(db []*traj.Trajectory, topt trajtree.Options, opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	shards, err := buildShards(db, topt, opt)
	if err != nil {
		return nil, err
	}
	return newEngine(shards, opt), nil
}

// Shards returns the number of index shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Size returns the number of indexed trajectories across all shards.
func (e *Engine) Size() int {
	total := 0
	for _, s := range e.shards {
		total += s.size()
	}
	return total
}

// Height returns the maximum shard height.
func (e *Engine) Height() int {
	max := 0
	for _, s := range e.shards {
		if h := s.height(); h > max {
			max = h
		}
	}
	return max
}

// Lookup returns the indexed trajectory with the given ID, or nil. The
// hash placement invariant routes it straight to the owning shard.
func (e *Engine) Lookup(id int) *traj.Trajectory {
	return e.shards[shardIndex(id, len(e.shards))].lookup(id)
}

// Search executes one Query against the index, honouring ctx
// cooperatively through the whole stack: the shard fan-out skips
// un-started shards once ctx fires, the tree search polls a cancellation
// flag between candidate pops, and the EDwP kernel polls it once per DP
// row — a fired context aborts the query within one DP row of work. A
// never-fired context leaves every answer byte-identical to the
// deprecated per-variant methods (property-tested).
//
// On success the Answer carries the (distance, ID)-sorted results, the
// per-query stats when req.WithStats is set, and Truncated when a
// MaxEvals budget ran out before the search completed. On error —
// ErrInvalidQuery for a malformed request, or ctx.Err() once the context
// fires — the Answer is empty; partial work already performed still
// lands in the engine's cumulative counters.
//
// Cached KNN answers are returned without touching any shard; the
// Results slice is then shared with the cache and must not be mutated.
func (e *Engine) Search(ctx context.Context, q *traj.Trajectory, req Query) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return Answer{}, fmt.Errorf("%w: nil query trajectory", ErrInvalidQuery)
	}
	if err := req.validate(); err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	ans, raw, err := e.searchOne(ctx, q, req, true)
	if !ans.Cached {
		e.recordQueryStats(raw)
	}
	return ans, err
}

// SearchBatch executes the same Query for len(qs) independent query
// trajectories on the engine's worker pool, returning one Answer per
// query in input order — unlike the deprecated KNNBatch, per-query Stats
// survive (each Answer carries its own when req.WithStats is set). The
// engine's cumulative counters accumulate every query's work exactly
// once, flushed as one aggregate per batch to keep the workers off the
// shared atomics.
//
// All queries share ctx: once it fires, finished answers keep their
// values, un-started queries are skipped, and SearchBatch returns the
// partial answers alongside ctx's error. Workers reuse kernel and
// visit-set scratch from sync.Pools across their queries, so a batch
// performs no per-query scratch allocation.
func (e *Engine) SearchBatch(ctx context.Context, qs []*traj.Trajectory, req Query) ([]Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	for i, q := range qs {
		if q == nil {
			return nil, fmt.Errorf("%w: nil query trajectory at index %d", ErrInvalidQuery, i)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	answers := make([]Answer, len(qs))
	raws := make([]trajtree.Stats, len(qs))
	errs := make([]error, len(qs))
	par.For(e.opt.Workers, len(qs), func(i int) {
		answers[i], raws[i], errs[i] = e.searchOne(ctx, qs[i], req, false)
	})
	var total trajtree.Stats
	for i := range raws {
		if !answers[i].Cached {
			total.Add(raws[i])
		}
	}
	e.recordQueryStats(total)
	if err := ctx.Err(); err != nil {
		return answers, err
	}
	for _, err := range errs {
		if err != nil {
			return answers, err
		}
	}
	return answers, nil
}

// searchOne runs one query without folding its stats into the engine
// counters (returned raw for the caller to record — once per query for
// Search, one aggregate per batch for SearchBatch). concurrent selects
// between a goroutine fan-out across shards (single interactive queries)
// and an inline shard loop (batch workers, which are already saturating
// the pool — the inline loop still shares the bound, so later shards
// benefit from earlier shards' answers).
func (e *Engine) searchOne(ctx context.Context, q *traj.Trajectory, req Query, concurrent bool) (Answer, trajtree.Stats, error) {
	e.queries.Add(1)
	var key cacheKey
	gen := e.gen.load()
	useCache := e.cache != nil && req.cacheable()
	if useCache {
		key = knnKey(q, req.K)
		if res, ok := e.cache.get(key, gen); ok {
			e.cacheHits.Add(1)
			return Answer{Results: res, Cached: true}, trajtree.Stats{}, nil
		}
	}
	// The Ctl is only armed when it can matter — a cancellable context or
	// an eval budget. Background-context, unbudgeted queries (the legacy
	// wrappers) run the exact pre-redesign path with a nil Ctl.
	var ctl *trajtree.Ctl
	if ctx.Done() != nil || req.MaxEvals > 0 {
		ctl = trajtree.NewCtl(ctx, req.MaxEvals)
		defer ctl.Release()
	}
	res, st, truncated, err := e.fanout(q, req, ctl, concurrent)
	if err != nil {
		return Answer{}, st, err
	}
	// Only cache answers computed against a quiescent generation: if an
	// update completed mid-fan-out the answer is still correct (see the
	// Engine atomicity note) but may not correspond to any generation the
	// cache can name, so it is simply not cached. Truncated answers are
	// never cached — they are not the exact KNN the key promises.
	if useCache && !truncated && e.gen.load() == gen {
		e.cache.put(key, gen, res)
	}
	ans := Answer{Results: res, Truncated: truncated}
	if req.WithStats {
		ans.Stats = st
	}
	return ans, st, nil
}

// fanout dispatches one validated query across the shards and merges the
// per-shard answers. KNN kinds share one tightening bound (seeded with
// the query's Limit) so a close neighbour found in any shard abandons DP
// work in all the others; range queries are seeded by their radius and
// need no shared state. Once ctl fires, shards whose search has not
// started are skipped entirely and the merged answer is discarded.
func (e *Engine) fanout(q *traj.Trajectory, req Query, ctl *trajtree.Ctl, concurrent bool) ([]trajtree.Result, trajtree.Stats, bool, error) {
	shardRun := func(s *shard, bound *trajtree.SharedBound) ([]trajtree.Result, trajtree.Stats, bool, error) {
		switch req.Kind {
		case KindRange:
			return s.searchRange(q, req.Radius, ctl)
		case KindSubKNN:
			return s.searchSub(q, req.K, bound, ctl)
		default: // KindKNN; validate guarantees the kind set
			return s.searchKNN(q, req.K, bound, ctl)
		}
	}
	// One bound for both fan-out shapes: the k-NN kinds prune against a
	// tightening bound seeded with the query's Limit, range needs none
	// (its radius already is the bound). A single shard with no Limit
	// keeps the legacy nil-bound fast path instead of a +Inf bound it
	// could only tighten against itself.
	var bound *trajtree.SharedBound
	if req.Kind != KindRange {
		if limit := req.seedLimit(); !math.IsInf(limit, 1) {
			bound = trajtree.NewSharedBound(limit)
		} else if len(e.shards) > 1 {
			bound = trajtree.NewSharedBound(math.Inf(1))
		}
	}
	if len(e.shards) == 1 {
		return shardRun(e.shards[0], bound)
	}
	per := make([][]trajtree.Result, len(e.shards))
	sts := make([]trajtree.Stats, len(e.shards))
	truncs := make([]bool, len(e.shards))
	errs := make([]error, len(e.shards))
	run := func(i int) {
		if ctl.Cancelled() {
			// Cancellation abort for shards whose search has not started;
			// already-running shards notice the same flag themselves.
			errs[i] = ctl.Err()
			return
		}
		per[i], sts[i], truncs[i], errs[i] = shardRun(e.shards[i], bound)
	}
	if concurrent {
		par.For(e.opt.Workers, len(e.shards), run)
	} else {
		for i := range e.shards {
			run(i)
		}
	}
	// Fold stats before the error checks: partial work performed by
	// shards that ran before the cancellation still counts.
	var total trajtree.Stats
	truncated := false
	for i := range sts {
		total.Add(sts[i])
		truncated = truncated || truncs[i]
	}
	if err := ctl.Err(); err != nil {
		return nil, total, false, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, total, false, err
		}
	}
	k := req.K
	if req.Kind == KindRange {
		k = -1
	}
	return mergeResults(per, k), total, truncated, nil
}

// mergeResults concatenates per-shard answer lists and sorts by
// (distance, ID), keeping the best k when k >= 0 (pass a negative k to
// keep everything, the range-query case). The ID tie-break is the
// load-bearing determinism guarantee: it makes the merged answer a
// function of the candidate set alone, independent of shard count, shard
// order, and scheduling, even when distances tie exactly. (A single-shard
// engine bypasses the merge entirely — it is the plain tree search,
// whose boundary ties follow traversal order; see the sharding notes in
// docs/ARCHITECTURE.md.)
func mergeResults(per [][]trajtree.Result, k int) []trajtree.Result {
	var all []trajtree.Result
	for _, rs := range per {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Traj.ID < all[j].Traj.ID
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// KNN answers an exact k-nearest-neighbour query, fanning out across the
// shards with a shared tightening bound.
//
// Deprecated: use Search with a KindKNN Query, which adds cancellation,
// seed bounds and evaluation budgets. With a background context the
// answers are byte-identical.
func (e *Engine) KNN(q *traj.Trajectory, k int) ([]trajtree.Result, trajtree.Stats) {
	ans, _ := e.Search(context.Background(), q, Query{Kind: KindKNN, K: k, WithStats: true})
	return ans.Results, ans.Stats
}

// RangeSearch returns every indexed trajectory within radius of q,
// sorted ascending.
//
// Deprecated: use Search with a KindRange Query.
func (e *Engine) RangeSearch(q *traj.Trajectory, radius float64) ([]trajtree.Result, trajtree.Stats) {
	ans, _ := e.Search(context.Background(), q, Query{Kind: KindRange, Radius: radius, WithStats: true})
	return ans.Results, ans.Stats
}

// KNNBatch answers len(qs) independent k-NN queries on the engine's
// worker pool and returns the answers in input order.
//
// Deprecated: use SearchBatch, which additionally returns per-query
// Stats and honours a context.
func (e *Engine) KNNBatch(qs []*traj.Trajectory, k int) [][]trajtree.Result {
	answers, err := e.SearchBatch(context.Background(), qs, Query{Kind: KindKNN, K: k})
	out := make([][]trajtree.Result, len(qs))
	if err != nil {
		return out // invalid k: every answer list empty, as before
	}
	for i, a := range answers {
		out[i] = a.Results
	}
	return out
}

// Insert adds a trajectory to the index, blocking queries only on the
// owning shard for the duration of the update.
func (e *Engine) Insert(tr *traj.Trajectory) error {
	s := e.shards[shardIndex(tr.ID, len(e.shards))]
	if err := s.insert(tr, &e.gen); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	e.inserts.Add(1)
	return nil
}

// Delete removes the trajectory with the given ID, reporting whether it
// was present.
func (e *Engine) Delete(id int) bool {
	s := e.shards[shardIndex(id, len(e.shards))]
	if !s.delete(id, &e.gen) {
		return false
	}
	e.deletes.Add(1)
	return true
}

// Rebuild reconstructs every shard from its current members as a
// rolling update: shards rebuild strictly one at a time, so at any
// moment at most one shard is write-locked and queries keep flowing
// through the others (a k-NN fan-out stalls only on the shard currently
// rebuilding, not on the whole index). Availability is deliberately
// chosen over rebuild wall clock here — each shard's internal build
// still parallelises when the tree's Parallel option is set.
func (e *Engine) Rebuild() error {
	for _, s := range e.shards {
		if err := s.rebuild(&e.gen); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	e.rebuilds.Add(1)
	return nil
}

// ShardStats is one shard's slice of the index shape on GET /stats.
type ShardStats struct {
	Shard  int `json:"shard"`
	Size   int `json:"size"`
	Height int `json:"height"`
}

// Stats is a point-in-time snapshot of the engine's counters and index
// shape, the payload of GET /stats.
type Stats struct {
	Size      int    `json:"size"`
	Height    int    `json:"height"`
	Shards    int    `json:"shards"`
	Queries   uint64 `json:"queries"`
	CacheHits uint64 `json:"cache_hits"`
	CacheLen  int    `json:"cache_len"`
	Inserts   uint64 `json:"inserts"`
	Deletes   uint64 `json:"deletes"`
	Rebuilds  uint64 `json:"rebuilds"`
	Snapshots uint64 `json:"snapshots"`
	Workers   int    `json:"workers"`

	// PerShard breaks the index shape down by shard; Size is their sum
	// and Height their max.
	PerShard []ShardStats `json:"per_shard"`

	// Cumulative kernel instrumentation over all non-cached queries.
	// EarlyAbandons / DistanceCalls is the fraction of exact evaluations
	// the bounded kernel cut short.
	DistanceCalls   uint64 `json:"distance_calls"`
	EarlyAbandons   uint64 `json:"early_abandons"`
	LowerBoundCalls uint64 `json:"lower_bound_calls"`
	NodesVisited    uint64 `json:"nodes_visited"`
	NodesPruned     uint64 `json:"nodes_pruned"`
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:          len(e.shards),
		Queries:         e.queries.Load(),
		CacheHits:       e.cacheHits.Load(),
		Inserts:         e.inserts.Load(),
		Deletes:         e.deletes.Load(),
		Rebuilds:        e.rebuilds.Load(),
		Snapshots:       e.snapshots.Load(),
		Workers:         e.opt.Workers,
		DistanceCalls:   e.distanceCalls.Load(),
		EarlyAbandons:   e.earlyAbandons.Load(),
		LowerBoundCalls: e.lowerBoundCalls.Load(),
		NodesVisited:    e.nodesVisited.Load(),
		NodesPruned:     e.nodesPruned.Load(),
	}
	st.PerShard = make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		s.mu.RLock()
		size, h := s.tree.Size(), s.tree.Height()
		s.mu.RUnlock()
		st.PerShard[i] = ShardStats{Shard: i, Size: size, Height: h}
		st.Size += size
		if h > st.Height {
			st.Height = h
		}
	}
	if e.cache != nil {
		st.CacheLen = e.cache.len()
	}
	return st
}
