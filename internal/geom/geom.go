// Package geom provides the plane geometry primitives that the trajectory
// model, the EDwP distance and the TrajTree index are built on: 2-D points,
// line segments, closest-point projections and axis-aligned rectangles.
//
// All distances are Euclidean and purely spatial; timestamps live one level
// up, in package traj. Functions are allocation-free and safe for concurrent
// use (no shared state).
package geom

import "math"

// Point is a location in the 2-D plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q. It uses the plain
// sqrt form rather than math.Hypot: trajectory coordinates are far from the
// overflow regime and this is the hottest function in the repository.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons in hot loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q taken as a vector.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f about the origin.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q taken as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the length of p taken as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp returns the point a fraction t of the way from p to q.
// t is not clamped; t=0 yields p and t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Segment is a directed straight line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// IsDegenerate reports whether s has (near-)zero length.
func (s Segment) IsDegenerate() bool { return s.A == s.B }

// ClosestFrac returns the parameter t in [0,1] such that Lerp(s.A, s.B, t)
// is the point on s closest to p. For a degenerate segment it returns 0.
func (s Segment) ClosestFrac(p Point) float64 {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// Closest returns the point on s closest to p — the paper's projection
// p^{ins(e, ·)} of a point onto a segment.
func (s Segment) Closest(p Point) Point {
	return Lerp(s.A, s.B, s.ClosestFrac(p))
}

// DistTo returns the minimum distance from point p to segment s.
func (s Segment) DistTo(p Point) float64 {
	return p.Dist(s.Closest(p))
}

// At returns the point a fraction t along s.
func (s Segment) At(t float64) Point { return Lerp(s.A, s.B, t) }

// Rect is an axis-aligned rectangle. Min holds the smaller coordinates on
// both axes and Max the larger; an empty Rect is represented by the zero
// value of Empty().
type Rect struct {
	Min, Max Point
}

// Empty returns the canonical empty rectangle: any Union with it yields the
// other operand, and Contains is false for every point.
func Empty() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// RectOf returns the smallest rectangle containing all of pts.
func RectOf(pts ...Point) Rect {
	r := Empty()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	if r.IsEmpty() {
		return Rect{Min: p, Max: p}
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	if r.IsEmpty() {
		return q
	}
	if q.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, q.Min.X), math.Min(r.Min.Y, q.Min.Y)},
		Max: Point{math.Max(r.Max.X, q.Max.X), math.Max(r.Max.Y, q.Max.Y)},
	}
}

// Area returns the area of r; an empty rectangle has area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether q lies entirely inside r.
func (r Rect) ContainsRect(q Rect) bool {
	if q.IsEmpty() {
		return true
	}
	return r.Contains(q.Min) && r.Contains(q.Max)
}

// Center returns the center point of r. It is undefined for empty rectangles.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// ClosestPoint returns the point inside r closest to p (p itself when p is
// inside r). This realises the paper's dist(s, b) and the projection of a
// point onto an st-box.
func (r Rect) ClosestPoint(p Point) Point {
	x := math.Min(math.Max(p.X, r.Min.X), r.Max.X)
	y := math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y)
	return Point{x, y}
}

// DistToPoint returns min over points q in r of p.Dist(q); zero when p is
// inside r.
func (r Rect) DistToPoint(p Point) float64 {
	return p.Dist(r.ClosestPoint(p))
}

// DistToSegment returns the minimum distance between segment s and any point
// of r — the paper's reverse projection distance of an st-box onto a
// segment. It is 0 whenever s intersects r.
//
// This is the hottest operation of the index's lower-bound computation, so
// it is evaluated analytically: squared distance from a point to an
// axis-aligned rectangle is convex and piecewise quadratic along the
// segment, with breakpoints only where a coordinate crosses a rectangle
// edge. The minimum over each piece is closed-form.
// between reports whether v lies strictly between a and b. It is the
// division-free necessary condition for an edge crossing in DistToSegment:
// when false, the crossing parameter cannot land in (0, 1), so the
// division there would never add a breakpoint.
func between(v, a, b float64) bool {
	return (a < v && v < b) || (b < v && v < a)
}

func (r Rect) DistToSegment(s Segment) float64 {
	if r.Contains(s.A) || r.Contains(s.B) {
		return 0
	}
	if r.IsEmpty() {
		return math.Inf(1)
	}
	// Breakpoints where x(t) or y(t) crosses an edge coordinate. The body
	// is closure-free — the hot bound DP calls this ~thousands of times per
	// query, and captured locals forced the breakpoint array onto a zeroed
	// stack frame (duffzero) with every call. Only the ≤4 interior edge
	// crossings are buffered; the fixed 0/1 endpoints are supplied by the
	// piece loop itself, keeping the buffer small enough for inline stack
	// zeroing. The between test in front of each crossing skips the
	// division whenever the edge coordinate falls outside the segment's
	// coordinate span; it never changes the breakpoint set (see the
	// equivalence test against distToSegmentRef).
	var cr [4]float64
	m := 0
	if between(r.Min.X, s.A.X, s.B.X) {
		if t := (r.Min.X - s.A.X) / (s.B.X - s.A.X); t > 0 && t < 1 {
			cr[m] = t
			m++
		}
	}
	if between(r.Max.X, s.A.X, s.B.X) {
		if t := (r.Max.X - s.A.X) / (s.B.X - s.A.X); t > 0 && t < 1 {
			cr[m] = t
			m++
		}
	}
	if between(r.Min.Y, s.A.Y, s.B.Y) {
		if t := (r.Min.Y - s.A.Y) / (s.B.Y - s.A.Y); t > 0 && t < 1 {
			cr[m] = t
			m++
		}
	}
	if between(r.Max.Y, s.A.Y, s.B.Y) {
		if t := (r.Max.Y - s.A.Y) / (s.B.Y - s.A.Y); t > 0 && t < 1 {
			cr[m] = t
			m++
		}
	}
	// Insertion sort of the ≤4 crossings; all lie strictly inside (0, 1),
	// so the piece boundaries below — 0, sorted crossings, 1 — are exactly
	// the sorted breakpoint list of the reference formulation.
	for i := 1; i < m; i++ {
		for j := i; j > 0 && cr[j] < cr[j-1]; j-- {
			cr[j], cr[j-1] = cr[j-1], cr[j]
		}
	}
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	best := math.Inf(1)
	t1 := 0.0
	for i := 0; i <= m; i++ {
		t2 := 1.0
		if i < m {
			t2 = cr[i]
		}
		tm := (t1 + t2) / 2
		// Affine coefficients (α, β) of each axis gap α·t+β on the regime
		// holding at parameter tm, such that gap ≥ 0 there.
		var ax, bx float64
		if c := s.A.X + dx*tm; c < r.Min.X {
			ax, bx = -dx, r.Min.X-s.A.X
		} else if c > r.Max.X {
			ax, bx = dx, s.A.X-r.Max.X
		}
		var ay, by float64
		if c := s.A.Y + dy*tm; c < r.Min.Y {
			ay, by = -dy, r.Min.Y-s.A.Y
		} else if c > r.Max.Y {
			ay, by = dy, s.A.Y-r.Max.Y
		}
		gx := ax*t1 + bx
		gy := ay*t1 + by
		if gx < 0 {
			gx = 0
		}
		if gy < 0 {
			gy = 0
		}
		if d2 := gx*gx + gy*gy; d2 < best {
			best = d2
		}
		gx = ax*t2 + bx
		gy = ay*t2 + by
		if gx < 0 {
			gx = 0
		}
		if gy < 0 {
			gy = 0
		}
		if d2 := gx*gx + gy*gy; d2 < best {
			best = d2
		}
		// Interior vertex of the quadratic (ax·t+bx)² + (ay·t+by)².
		if den := ax*ax + ay*ay; den > 0 {
			if tv := -(ax*bx + ay*by) / den; tv > t1 && tv < t2 {
				gx = ax*tv + bx
				gy = ay*tv + by
				if gx < 0 {
					gx = 0
				}
				if gy < 0 {
					gy = 0
				}
				if d2 := gx*gx + gy*gy; d2 < best {
					best = d2
				}
			}
		}
		t1 = t2
	}
	return math.Sqrt(best)
}

// ClosestOnSegment returns the point on segment s closest to rectangle r,
// together with that minimum distance.
func (r Rect) ClosestOnSegment(s Segment) (Point, float64) {
	if r.Contains(s.A) {
		return s.A, 0
	}
	if r.Contains(s.B) {
		return s.B, 0
	}
	// Sample the four edges: the closest point on s to the rectangle is the
	// closest point on s to one of the edges (or an intersection point).
	c1 := Point{r.Min.X, r.Max.Y}
	c2 := Point{r.Max.X, r.Min.Y}
	edges := [4]Segment{
		{r.Min, c2}, {c2, r.Max}, {r.Max, c1}, {c1, r.Min},
	}
	best := s.A
	bestD := math.Inf(1)
	for _, e := range edges {
		p, q := closestPair(s, e)
		if d := p.Dist(q); d < bestD {
			bestD = d
			best = p
		}
	}
	if SegIntersectsRect(s, r) {
		// Any intersection point is at distance zero; refine best to an
		// interior sample by bisection against containment.
		if p, ok := segRectEntryPoint(s, r); ok {
			return p, 0
		}
	}
	return best, bestD
}

// SegIntersectsRect reports whether segment s touches rectangle r.
func SegIntersectsRect(s Segment, r Rect) bool {
	return r.DistToSegment(s) == 0
}

// segRectEntryPoint finds some point of s inside r by parametric clipping
// (Liang–Barsky). ok is false when s misses r entirely.
func segRectEntryPoint(s Segment, r Rect) (Point, bool) {
	t0, t1 := 0.0, 1.0
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if clip(-dx, s.A.X-r.Min.X) && clip(dx, r.Max.X-s.A.X) &&
		clip(-dy, s.A.Y-r.Min.Y) && clip(dy, r.Max.Y-s.A.Y) {
		return s.At(t0), true
	}
	return Point{}, false
}

// orient returns the sign of the cross product (b-a)×(c-a):
// +1 counter-clockwise, -1 clockwise, 0 collinear.
func orient(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// onSegment reports whether collinear point p lies on segment s.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X) <= p.X && p.X <= math.Max(s.A.X, s.B.X) &&
		math.Min(s.A.Y, s.B.Y) <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)
}

// SegmentsIntersect reports whether segments s1 and s2 share at least one
// point, endpoints included.
func SegmentsIntersect(s1, s2 Segment) bool {
	d1 := orient(s2.A, s2.B, s1.A)
	d2 := orient(s2.A, s2.B, s1.B)
	d3 := orient(s1.A, s1.B, s2.A)
	d4 := orient(s1.A, s1.B, s2.B)
	if d1*d2 < 0 && d3*d4 < 0 {
		return true
	}
	switch {
	case d1 == 0 && onSegment(s2, s1.A):
		return true
	case d2 == 0 && onSegment(s2, s1.B):
		return true
	case d3 == 0 && onSegment(s1, s2.A):
		return true
	case d4 == 0 && onSegment(s1, s2.B):
		return true
	}
	return false
}

// SegmentDist returns the minimum distance between two segments
// (0 if they intersect).
func SegmentDist(s1, s2 Segment) float64 {
	if SegmentsIntersect(s1, s2) {
		return 0
	}
	d := s1.DistTo(s2.A)
	if v := s1.DistTo(s2.B); v < d {
		d = v
	}
	if v := s2.DistTo(s1.A); v < d {
		d = v
	}
	if v := s2.DistTo(s1.B); v < d {
		d = v
	}
	return d
}

// closestPair returns the pair of points (p on s1, q on s2) achieving
// SegmentDist(s1, s2) for non-intersecting segments; for intersecting ones
// it still returns a nearby pair from the endpoint projections.
func closestPair(s1, s2 Segment) (Point, Point) {
	type cand struct{ p, q Point }
	cs := [4]cand{
		{s1.Closest(s2.A), s2.A},
		{s1.Closest(s2.B), s2.B},
		{s2.Closest(s1.A), s1.A},
		{s2.Closest(s1.B), s1.B},
	}
	// For the latter two, the point on s1 is the endpoint itself.
	cs[2] = cand{s1.A, s2.Closest(s1.A)}
	cs[3] = cand{s1.B, s2.Closest(s1.B)}
	best := cs[0]
	bestD := cs[0].p.Dist(cs[0].q)
	for _, c := range cs[1:] {
		if d := c.p.Dist(c.q); d < bestD {
			bestD = d
			best = c
		}
	}
	return best.p, best.q
}
