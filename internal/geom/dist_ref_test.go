package geom

import (
	"math"
	"math/rand"
	"testing"
)

// distToSegmentRef is the pre-arena DistToSegment, kept verbatim as the
// bit-identity oracle for the closure-free rewrite.
func distToSegmentRef(r Rect, s Segment) float64 {
	if r.Contains(s.A) || r.Contains(s.B) {
		return 0
	}
	if r.IsEmpty() {
		return math.Inf(1)
	}
	var ts [10]float64
	n := 0
	ts[n] = 0
	n++
	ts[n] = 1
	n++
	addCrossing := func(a, b, bound float64) {
		if d := b - a; d != 0 {
			if t := (bound - a) / d; t > 0 && t < 1 {
				ts[n] = t
				n++
			}
		}
	}
	addCrossing(s.A.X, s.B.X, r.Min.X)
	addCrossing(s.A.X, s.B.X, r.Max.X)
	addCrossing(s.A.Y, s.B.Y, r.Min.Y)
	addCrossing(s.A.Y, s.B.Y, r.Max.Y)
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	gap := func(a, d, lo, hi, tm float64) (float64, float64) {
		c := a + d*tm
		switch {
		case c < lo:
			return -d, lo - a
		case c > hi:
			return d, a - hi
		default:
			return 0, 0
		}
	}
	best := math.Inf(1)
	eval := func(t, ax, bx, ay, by float64) {
		gx := ax*t + bx
		gy := ay*t + by
		if gx < 0 {
			gx = 0
		}
		if gy < 0 {
			gy = 0
		}
		if d2 := gx*gx + gy*gy; d2 < best {
			best = d2
		}
	}
	for i := 0; i+1 < n; i++ {
		t1, t2 := ts[i], ts[i+1]
		tm := (t1 + t2) / 2
		ax, bx := gap(s.A.X, dx, r.Min.X, r.Max.X, tm)
		ay, by := gap(s.A.Y, dy, r.Min.Y, r.Max.Y, tm)
		eval(t1, ax, bx, ay, by)
		eval(t2, ax, bx, ay, by)
		if den := ax*ax + ay*ay; den > 0 {
			if tv := -(ax*bx + ay*by) / den; tv > t1 && tv < t2 {
				eval(tv, ax, bx, ay, by)
			}
		}
	}
	return math.Sqrt(best)
}

// TestDistToSegmentMatchesReference drives the rewritten DistToSegment
// against the verbatim original over random rect/segment pairs, including
// degenerate segments, axis-aligned segments and rects sharing coordinates
// with segment endpoints, requiring bit-identical results.
func TestDistToSegmentMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	coord := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return float64(rng.Intn(11)) - 5 // grid values: exact collisions
		default:
			return rng.NormFloat64() * 10
		}
	}
	for iter := 0; iter < 200000; iter++ {
		a := Point{X: coord(), Y: coord()}
		b := Point{X: coord(), Y: coord()}
		switch rng.Intn(8) {
		case 0:
			b = a // degenerate segment
		case 1:
			b.X = a.X // vertical
		case 2:
			b.Y = a.Y // horizontal
		}
		r := Empty().ExtendPoint(Point{X: coord(), Y: coord()}).ExtendPoint(Point{X: coord(), Y: coord()})
		s := Seg(a, b)
		got := r.DistToSegment(s)
		want := distToSegmentRef(r, s)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("iter %d: r=%+v s=%+v got %v (%x) want %v (%x)",
				iter, r, s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	// Empty rect.
	if got, want := Empty().DistToSegment(Seg(Point{}, Point{X: 1})), distToSegmentRef(Empty(), Seg(Point{}, Point{X: 1})); got != want {
		t.Fatalf("empty rect: got %v want %v", got, want)
	}
}
