package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// clampCoord maps an arbitrary generated float into a well-behaved
// coordinate range so property tests exercise geometry, not float overflow.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative", Pt(-3, -4), Pt(0, 0), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almost(got, tt.want) {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almost(got, tt.want*tt.want) {
				t.Errorf("Dist2(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		return almost(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %v, want %v", got, b)
	}
	if got := Lerp(a, b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp t=0.5 = %v, want (5,10)", got)
	}
}

func TestSegmentClosest(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		name string
		p    Point
		want Point
	}{
		{"above middle", Pt(5, 3), Pt(5, 0)},
		{"before start", Pt(-4, 2), Pt(0, 0)},
		{"after end", Pt(14, -2), Pt(10, 0)},
		{"on segment", Pt(7, 0), Pt(7, 0)},
		{"at endpoint", Pt(10, 0), Pt(10, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Closest(tt.p); !almost(got.Dist(tt.want), 0) {
				t.Errorf("Closest(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestSegmentClosestDegenerate(t *testing.T) {
	s := Seg(Pt(3, 3), Pt(3, 3))
	if got := s.Closest(Pt(100, -7)); got != Pt(3, 3) {
		t.Errorf("Closest on degenerate = %v, want (3,3)", got)
	}
	if !s.IsDegenerate() {
		t.Error("IsDegenerate = false, want true")
	}
}

// The projection must be the true argmin: no other point on the segment may
// be closer. Property-checked over random segments and points.
func TestClosestIsArgmin(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64, frac float64) bool {
		s := Seg(Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by)))
		p := Pt(clampCoord(px), clampCoord(py))
		c := s.Closest(p)
		// Compare with 64 evenly spaced candidates.
		for i := 0; i <= 64; i++ {
			q := s.At(float64(i) / 64)
			if p.Dist(q) < p.Dist(c)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(4, 2))
	if got := r.Area(); !almost(got, 8) {
		t.Errorf("Area = %v, want 8", got)
	}
	if !r.Contains(Pt(2, 1)) {
		t.Error("Contains center = false")
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(4, 2)) {
		t.Error("Contains corners = false")
	}
	if r.Contains(Pt(5, 1)) {
		t.Error("Contains outside point = true")
	}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v, want (2,1)", got)
	}
}

func TestEmptyRect(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty().IsEmpty() = false")
	}
	if got := e.Area(); got != 0 {
		t.Errorf("empty Area = %v, want 0", got)
	}
	r := RectOf(Pt(1, 1))
	if got := e.Union(r); got != r {
		t.Errorf("Empty.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r.Union(Empty) = %v, want %v", got, r)
	}
	if e.Contains(Pt(0, 0)) {
		t.Error("empty Contains = true")
	}
}

func TestRectUnionCommutes(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r1 := RectOf(Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by)))
		r2 := RectOf(Pt(clampCoord(cx), clampCoord(cy)), Pt(clampCoord(dx), clampCoord(dy)))
		u1, u2 := r1.Union(r2), r2.Union(r1)
		return u1 == u2 && u1.ContainsRect(r1) && u1.ContainsRect(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectClosestPoint(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(4, 2))
	tests := []struct {
		p, want Point
		d       float64
	}{
		{Pt(2, 1), Pt(2, 1), 0},                    // inside
		{Pt(-3, 1), Pt(0, 1), 3},                   // left
		{Pt(6, 1), Pt(4, 1), 2},                    // right
		{Pt(2, 5), Pt(2, 2), 3},                    // above
		{Pt(7, 6), Pt(4, 2), 5},                    // corner (3-4-5)
		{Pt(0, 0), Pt(0, 0), 0},                    // on boundary
		{Pt(-3, -4), Pt(0, 0), 5},                  // corner below-left
		{Pt(4.5, 2.5), Pt(4, 2), 0.5 * math.Sqrt2}, // near corner
	}
	for _, tt := range tests {
		if got := r.ClosestPoint(tt.p); !almost(got.Dist(tt.want), 0) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
		if got := r.DistToPoint(tt.p); !almost(got, tt.d) {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.d)
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name   string
		s1, s2 Segment
		want   bool
	}{
		{"cross", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true},
		{"parallel", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(0, 1), Pt(2, 1)), false},
		{"touch endpoint", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(2, 0), Pt(3, 5)), true},
		{"collinear overlap", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(6, 0)), true},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false},
		{"T shape", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(2, 3)), true},
		{"near miss", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0.01), Pt(2, 3)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentsIntersect(tt.s1, tt.s2); got != tt.want {
				t.Errorf("SegmentsIntersect = %v, want %v", got, tt.want)
			}
			if got := SegmentsIntersect(tt.s2, tt.s1); got != tt.want {
				t.Errorf("SegmentsIntersect (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentDist(t *testing.T) {
	tests := []struct {
		name   string
		s1, s2 Segment
		want   float64
	}{
		{"intersecting", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), 0},
		{"parallel", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(0, 3), Pt(2, 3)), 3},
		{"endpoint to interior", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 1), Pt(2, 5)), 1},
		{"skew", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(4, 4), Pt(5, 5)), Pt(1, 0).Dist(Pt(4, 4))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentDist(tt.s1, tt.s2); !almost(got, tt.want) {
				t.Errorf("SegmentDist = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectDistToSegment(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(4, 2))
	tests := []struct {
		name string
		s    Segment
		want float64
	}{
		{"crossing", Seg(Pt(-1, 1), Pt(5, 1)), 0},
		{"endpoint inside", Seg(Pt(2, 1), Pt(9, 9)), 0},
		{"above", Seg(Pt(0, 5), Pt(4, 5)), 3},
		{"right of", Seg(Pt(7, 0), Pt(7, 2)), 3},
		{"diagonal miss", Seg(Pt(7, 5), Pt(9, 7)), Pt(7, 5).Dist(Pt(4, 2))},
		{"touching edge", Seg(Pt(4, 1), Pt(8, 1)), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.DistToSegment(tt.s); !almost(got, tt.want) {
				t.Errorf("DistToSegment = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClosestOnSegment(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(4, 2))
	// Segment above the box: closest point straight down onto y=2 edge.
	p, d := r.ClosestOnSegment(Seg(Pt(1, 5), Pt(3, 5)))
	if !almost(d, 3) {
		t.Errorf("dist = %v, want 3", d)
	}
	if !almost(p.Y, 5) {
		t.Errorf("closest point %v should be on the segment (y=5)", p)
	}
	// Crossing segment: distance zero, returned point inside box.
	p, d = r.ClosestOnSegment(Seg(Pt(-2, 1), Pt(6, 1)))
	if d != 0 {
		t.Errorf("crossing dist = %v, want 0", d)
	}
	if !r.Contains(p) {
		t.Errorf("crossing point %v not inside rect", p)
	}
}

// DistToSegment must lower-bound the distance from every sampled point of
// the segment to the rectangle.
func TestRectSegmentDistIsLowerBound(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectOf(Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by)))
		s := Seg(Pt(clampCoord(cx), clampCoord(cy)), Pt(clampCoord(dx), clampCoord(dy)))
		d := r.DistToSegment(s)
		for i := 0; i <= 32; i++ {
			q := s.At(float64(i) / 32)
			if r.DistToPoint(q) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The analytic DistToSegment must agree with the brute-force edge-based
// computation (4 segment-segment distances) on random inputs.
func TestDistToSegmentMatchesEdgeMethod(t *testing.T) {
	edgeMethod := func(r Rect, s Segment) float64 {
		if r.Contains(s.A) || r.Contains(s.B) {
			return 0
		}
		c1 := Point{r.Min.X, r.Max.Y}
		c2 := Point{r.Max.X, r.Min.Y}
		edges := [4]Segment{{r.Min, c2}, {c2, r.Max}, {r.Max, c1}, {c1, r.Min}}
		min := math.Inf(1)
		for _, e := range edges {
			if SegmentsIntersect(s, e) {
				return 0
			}
			if d := SegmentDist(s, e); d < min {
				min = d
			}
		}
		return min
	}
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectOf(Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by)))
		s := Seg(Pt(clampCoord(cx), clampCoord(cy)), Pt(clampCoord(dx), clampCoord(dy)))
		got := r.DistToSegment(s)
		want := edgeMethod(r, s)
		return math.Abs(got-want) <= 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLiangBarskyEntry(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(4, 2))
	p, ok := segRectEntryPoint(Seg(Pt(-2, 1), Pt(6, 1)), r)
	if !ok || !r.Contains(p) {
		t.Errorf("entry point = %v ok=%v, want inside", p, ok)
	}
	if _, ok := segRectEntryPoint(Seg(Pt(-2, 5), Pt(6, 5)), r); ok {
		t.Error("entry reported for a missing segment")
	}
}
