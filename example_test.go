package trajmatch_test

import (
	"context"
	"fmt"

	"trajmatch"
)

// The Appendix-A trajectories of the paper: EDwP accumulates the cheapest
// replacement/insert edits, and deliberately violates the triangle
// inequality (Theorem 1).
func ExampleEDwP() {
	t1 := trajmatch.FromXY(1, 0, 0, 0, 1)
	t2 := trajmatch.FromXY(2, 0, 0, 0, 1, 0, 2)
	t3 := trajmatch.FromXY(3, 0, 0, 0, 1, 0, 2, 0, 3)
	fmt.Println(trajmatch.EDwP(t1, t2))
	fmt.Println(trajmatch.EDwP(t2, t3))
	fmt.Println(trajmatch.EDwP(t1, t3))
	// Output:
	// 1
	// 1
	// 4
}

// Re-sampling a trajectory never changes its EDwP distances: the insert
// edits split segments at projected points, so only the shape matters.
func ExampleEDwPAvg() {
	coarse := trajmatch.NewTrajectory(1, []trajmatch.STPoint{
		trajmatch.P(0, 0, 0), trajmatch.P(100, 0, 50),
	})
	fine := trajmatch.NewTrajectory(2, []trajmatch.STPoint{
		trajmatch.P(0, 0, 0), trajmatch.P(25, 0, 12.5), trajmatch.P(50, 0, 25),
		trajmatch.P(75, 0, 37.5), trajmatch.P(100, 0, 50),
	})
	fmt.Println(trajmatch.EDwPAvg(coarse, fine))
	// Output:
	// 0
}

// EDwPSub finds the best-matching contiguous sub-trajectory, skipping the
// host's prefix and suffix for free (Eq. 6).
func ExampleEDwPSub() {
	query := trajmatch.FromXY(1, 5, 5, 8, 5)
	host := trajmatch.FromXY(2, 0, 0, 5, 5, 8, 5, 20, 5)
	fmt.Println(trajmatch.EDwPSub(query, host))
	fmt.Printf("global: %v\n", trajmatch.EDwP(query, host) > 0)
	// Output:
	// 0
	// global: true
}

// AlignEDwP exposes the optimal edit script; its costs sum to the distance.
func ExampleAlignEDwP() {
	a := trajmatch.FromXY(1, 0, 0, 0, 1)
	b := trajmatch.FromXY(2, 0, 0, 0, 1, 0, 2)
	dist, edits := trajmatch.AlignEDwP(a, b)
	fmt.Println(dist, len(edits))
	for _, e := range edits {
		fmt.Println(e.Kind, e.Cost)
	}
	// Output:
	// 1 2
	// ins← 0
	// rep 1
}

// NewEngine wraps the index in a thread-safe engine whose single entry
// point, Search, executes any query kind under a context: queries run
// concurrently with each other, and updates are serialised against them.
// A repeated query is answered from the LRU cache until an update
// invalidates it.
func ExampleNewEngine() {
	db := []*trajmatch.Trajectory{
		trajmatch.FromXY(1, 0, 0, 10, 0),
		trajmatch.FromXY(2, 0, 1, 10, 1),
		trajmatch.FromXY(3, 0, 50, 10, 50),
	}
	engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{Seed: 1}, trajmatch.EngineOptions{})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	q := trajmatch.FromXY(9, 0, 2, 10, 2)
	knn1 := trajmatch.Query{Kind: trajmatch.QueryKNN, K: 1}
	ans, err := engine.Search(ctx, q, knn1)
	if err != nil {
		panic(err)
	}
	fmt.Println("nearest:", ans.Results[0].Traj.ID)

	engine.Search(ctx, q, knn1) // identical geometry: served from the cache
	if err := engine.Insert(trajmatch.FromXY(4, 0, 2, 10, 2)); err != nil {
		panic(err)
	}
	ans, err = engine.Search(ctx, q, knn1) // insert invalidated the cache; fresh answer
	if err != nil {
		panic(err)
	}
	fmt.Println("after insert:", ans.Results[0].Traj.ID)
	fmt.Println("cache hits:", engine.Stats().CacheHits)
	// Output:
	// nearest: 2
	// after insert: 4
	// cache hits: 1
}

// SearchBatch answers many queries on a worker pool, returning one
// Answer per query in input order.
func ExampleEngine_SearchBatch() {
	db := []*trajmatch.Trajectory{
		trajmatch.FromXY(1, 0, 0, 10, 0),
		trajmatch.FromXY(2, 0, 10, 10, 10),
		trajmatch.FromXY(3, 0, 20, 10, 20),
	}
	engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{Seed: 1}, trajmatch.EngineOptions{Workers: 2})
	if err != nil {
		panic(err)
	}
	queries := []*trajmatch.Trajectory{
		trajmatch.FromXY(91, 0, 1, 10, 1),
		trajmatch.FromXY(92, 0, 19, 10, 19),
	}
	answers, err := engine.SearchBatch(context.Background(), queries,
		trajmatch.Query{Kind: trajmatch.QueryKNN, K: 1})
	if err != nil {
		panic(err)
	}
	for i, a := range answers {
		fmt.Printf("query %d -> trajectory %d\n", i, a.Results[0].Traj.ID)
	}
	// Output:
	// query 0 -> trajectory 1
	// query 1 -> trajectory 3
}

// NewIndex bulk-loads a TrajTree; SearchKNN answers are exact (the nil
// arguments decline a shared fan-out bound and a cancellation control).
func ExampleNewIndex() {
	db := []*trajmatch.Trajectory{
		trajmatch.FromXY(1, 0, 0, 10, 0),
		trajmatch.FromXY(2, 0, 1, 10, 1),
		trajmatch.FromXY(3, 0, 50, 10, 50),
		trajmatch.FromXY(4, 0, 51, 10, 51),
	}
	idx, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{Seed: 1, LeafSize: 2})
	if err != nil {
		panic(err)
	}
	res, _, _, _ := idx.SearchKNN(trajmatch.FromXY(9, 0, 2, 10, 2), 2, nil, nil)
	fmt.Println(res[0].Traj.ID, res[1].Traj.ID)
	// Output:
	// 2 1
}
