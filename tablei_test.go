package trajmatch_test

import (
	"testing"

	"trajmatch"
)

// This file encodes Tables I and II as executable scenarios. For each
// robustness dimension we construct a pair of trajectories that are
// *equivalent* under the dimension's noise (same underlying movement) and a
// control pair that genuinely differs; a metric is robust when it scores
// the equivalent pair strictly closer than the control pair. The expected
// verdicts follow Section II's analysis and Fig. 1's walk-throughs.

// scenario produces (equivalent pair, control pair).
type scenario struct {
	name           string
	a1, a2, b1, b2 *trajmatch.Trajectory
}

// timeShiftScenario: same contour, the object is slower in the first half
// on one trajectory and slower in the second half on the other (Section I's
// motivating example). Control: different contour.
func timeShiftScenario() scenario {
	// Both cover x ∈ [0,100] with 11 samples; speeds differ by half.
	slowFirst := make([]trajmatch.STPoint, 0, 11)
	slowSecond := make([]trajmatch.STPoint, 0, 11)
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		// slowFirst spends 2/3 of its time on the first spatial half.
		var x1 float64
		if f < 2.0/3 {
			x1 = f * 1.5 * 50
		} else {
			x1 = 50 + (f-2.0/3)*3*50
		}
		var x2 float64
		if f < 1.0/3 {
			x2 = f * 3 * 50
		} else {
			x2 = 50 + (f-1.0/3)*1.5*50
		}
		slowFirst = append(slowFirst, trajmatch.P(x1, 0, f*100))
		slowSecond = append(slowSecond, trajmatch.P(x2, 0, f*100))
	}
	// Control: a genuinely different contour, parallel at distance 10 —
	// smaller than the transient gap the time shift induces, which is what
	// exposes DISSIM's one-to-one time mapping.
	control := make([]trajmatch.STPoint, 0, 11)
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		control = append(control, trajmatch.P(f*100, 10, f*100))
	}
	return scenario{
		name: "local time shifts",
		a1:   trajmatch.NewTrajectory(1, slowFirst),
		a2:   trajmatch.NewTrajectory(2, slowSecond),
		b1:   trajmatch.NewTrajectory(3, slowFirst),
		b2:   trajmatch.NewTrajectory(4, control),
	}
}

// pauseScenario is the milder time-shift form the edit-distance family is
// designed for (and the one the ERP paper evaluates): the same contour with
// a dwell — repeated samples — in one trajectory. Control: parallel contour
// at distance 10.
func pauseScenario() scenario {
	xs1 := []float64{-20, -10, 0, 0, 0, 10, 20}
	p1 := make([]trajmatch.STPoint, len(xs1))
	ctl := make([]trajmatch.STPoint, len(xs1))
	for i, x := range xs1 {
		p1[i] = trajmatch.P(x, 0, float64(i))
		ctl[i] = trajmatch.P(x, 10, float64(i))
	}
	xs2 := []float64{-20, -10, 0, 10, 20}
	p2 := make([]trajmatch.STPoint, len(xs2))
	for i, x := range xs2 {
		p2[i] = trajmatch.P(x, 0, float64(i)*1.5)
	}
	return scenario{
		name: "local time shifts (dwell)",
		a1:   trajmatch.NewTrajectory(1, p1),
		a2:   trajmatch.NewTrajectory(2, p2),
		b1:   trajmatch.NewTrajectory(3, p1),
		b2:   trajmatch.NewTrajectory(4, ctl),
	}
}

// interScenario: identical contour at 4 vs 11 samples (Fig. 1(a)).
func interScenario() scenario {
	sparse := []trajmatch.STPoint{
		trajmatch.P(0, 0, 0), trajmatch.P(0, 33, 33), trajmatch.P(0, 66, 66), trajmatch.P(0, 100, 100),
	}
	dense := make([]trajmatch.STPoint, 0, 11)
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		dense = append(dense, trajmatch.P(0, f*100, f*100))
	}
	// Control: a parallel contour offset by 1.5 — within EDR's ε = 2, so a
	// threshold metric scores this genuinely different pair as identical
	// while charging the equivalent sparse/dense pair for its extra points.
	control := make([]trajmatch.STPoint, 0, 11)
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		control = append(control, trajmatch.P(1.5, f*100, f*100))
	}
	return scenario{
		name: "inter-trajectory sampling",
		a1:   trajmatch.NewTrajectory(1, sparse),
		a2:   trajmatch.NewTrajectory(2, dense),
		b1:   trajmatch.NewTrajectory(3, sparse),
		b2:   trajmatch.NewTrajectory(4, control),
	}
}

// intraScenario (Fig. 1(b)): pairs share a densely sampled prefix; the
// equivalent pair also shares the long sparse tail, the control pair
// diverges over the tail. Robust metrics must weight the tail by extent,
// not by sample count.
func intraScenario() scenario {
	prefix := []trajmatch.STPoint{
		trajmatch.P(0, 0, 0), trajmatch.P(1, 0, 1), trajmatch.P(2, 0, 2), trajmatch.P(3, 0, 3),
	}
	sameTail := append(append([]trajmatch.STPoint{}, prefix...), trajmatch.P(103, 0, 103))
	sameTailDense := append(append([]trajmatch.STPoint{}, prefix...),
		trajmatch.P(53, 0, 53), trajmatch.P(103, 0, 103))
	divergedTail := append(append([]trajmatch.STPoint{}, prefix...), trajmatch.P(3, 100, 103))
	return scenario{
		name: "intra-trajectory sampling",
		a1:   trajmatch.NewTrajectory(1, sameTail),
		a2:   trajmatch.NewTrajectory(2, sameTailDense),
		b1:   trajmatch.NewTrajectory(3, sameTail),
		b2:   trajmatch.NewTrajectory(4, divergedTail),
	}
}

// phaseScenario (Fig. 1(c)): same contour sampled at offset positions.
func phaseScenario() scenario {
	p1 := make([]trajmatch.STPoint, 0, 11)
	p2 := make([]trajmatch.STPoint, 0, 11)
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		p1 = append(p1, trajmatch.P(0, f*100, f*100))
		p2 = append(p2, trajmatch.P(0, f*100+4.9, f*100+4.9))
	}
	control := make([]trajmatch.STPoint, 0, 11)
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		control = append(control, trajmatch.P(25, f*100, f*100))
	}
	return scenario{
		name: "phase variation",
		a1:   trajmatch.NewTrajectory(1, p1),
		a2:   trajmatch.NewTrajectory(2, p2),
		b1:   trajmatch.NewTrajectory(3, p1),
		b2:   trajmatch.NewTrajectory(4, control),
	}
}

// robust reports whether m scores the equivalent pair strictly closer than
// the control pair.
func robust(m trajmatch.Metric, sc scenario) bool {
	return m.Dist(sc.a1, sc.a2) < m.Dist(sc.b1, sc.b2)
}

// TestTableI asserts the robustness matrix of Tables I and II: EDwP handles
// every dimension; each baseline fails exactly where Section II says it
// fails. (Cells the paper leaves ambiguous are not asserted.)
func TestTableI(t *testing.T) {
	const eps = 2.0
	edwp := trajmatch.MetricEDwP{}
	dtw := trajmatch.MetricDTW{}
	lcss := trajmatch.MetricLCSS{Eps: eps}
	erp := trajmatch.MetricERP{}
	edr := trajmatch.MetricEDR{Eps: eps}
	dissim := trajmatch.MetricDISSIM{}

	scTime := timeShiftScenario()
	scPause := pauseScenario()
	scInter := interScenario()
	scIntra := intraScenario()
	scPhase := phaseScenario()

	// Row EDwP (Table II): robust on every dimension, both time-shift forms
	// included.
	for _, sc := range []scenario{scTime, scPause, scInter, scIntra, scPhase} {
		if !robust(edwp, sc) {
			t.Errorf("EDwP not robust to %s: equiv %v vs control %v",
				sc.name, edwp.Dist(sc.a1, sc.a2), edwp.Dist(sc.b1, sc.b2))
		}
	}

	// The warping/edit metrics absorb dwell-style local time shifts
	// (Table I column 1, in the regime the ERP/EDR papers evaluate).
	for _, m := range []trajmatch.Metric{dtw, lcss, erp, edr} {
		if !robust(m, scPause) {
			t.Errorf("%s should handle dwell-style local time shifts", m.Name())
		}
	}
	// DTW also absorbs strong speed differences via many-to-one mapping.
	if !robust(dtw, scTime) {
		t.Error("DTW should handle strong local time shifts")
	}
	// DISSIM cannot handle either form (one-to-one in time).
	if robust(dissim, scTime) {
		t.Error("DISSIM unexpectedly robust to local time shifts")
	}

	// Point-matching metrics fail inter-trajectory sampling variance
	// (Section II.1): the 4-vs-11-point pair scores worse than the
	// parallel control for EDR.
	if robust(edr, scInter) {
		t.Error("EDR unexpectedly robust to inter-trajectory sampling variance")
	}
	// DISSIM interpolates in time, so it handles this case (Table I row
	// DISSIM, inter column).
	if !robust(dissim, scInter) {
		t.Error("DISSIM should handle inter-trajectory sampling at equal speeds")
	}

	// Intra-trajectory variance breaks count-based matching (Fig. 1(b)):
	// EDR scores the dense-prefix control pair (distance 1) as close as or
	// closer than the true long-tail agreement.
	if robust(edr, scIntra) {
		t.Error("EDR unexpectedly robust to intra-trajectory sampling variance")
	}

	// Phase variation defeats threshold matching at eps below the offset
	// (Fig. 1(c)).
	if robust(edr, scPhase) {
		t.Error("EDR unexpectedly robust to phase variation")
	}
	if robust(lcss, scPhase) {
		t.Error("LCSS unexpectedly robust to phase variation")
	}
}

// TestTableIIThresholdFreedom asserts EDwP's threshold independence: the
// paper's Fig. 1(c) cliff (distance jumps with ε) cannot happen because
// EDwP has no ε. We verify EDwP varies smoothly while EDR jumps.
func TestTableIIThresholdFreedom(t *testing.T) {
	sc := phaseScenario()
	edwpD := trajmatch.EDwP(sc.a1, sc.a2)
	// EDR cliff between eps=2 and eps=5.
	d2 := trajmatch.MetricEDR{Eps: 2}.Dist(sc.a1, sc.a2)
	d5 := trajmatch.MetricEDR{Eps: 5}.Dist(sc.a1, sc.a2)
	if d2 <= d5 {
		t.Skipf("scenario did not trigger the EDR cliff (d2=%v d5=%v)", d2, d5)
	}
	if edwpD > trajmatch.EDwP(sc.b1, sc.b2) {
		t.Error("EDwP misordered the phase scenario")
	}
}
