package trajmatch_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"trajmatch"
)

// The facade smoke test: every public entry point works end to end.
func TestFacadeEndToEnd(t *testing.T) {
	a := trajmatch.FromXY(1, 0, 0, 0, 1)
	b := trajmatch.FromXY(2, 0, 0, 0, 1, 0, 2)
	c := trajmatch.FromXY(3, 0, 0, 0, 1, 0, 2, 0, 3)

	// Appendix A values through the facade.
	if d := trajmatch.EDwP(a, b); math.Abs(d-1) > 1e-9 {
		t.Errorf("EDwP = %v, want 1", d)
	}
	if d := trajmatch.EDwP(a, c); math.Abs(d-4) > 1e-9 {
		t.Errorf("EDwP = %v, want 4", d)
	}
	if d := trajmatch.EDwPAvg(a, c); math.Abs(d-4.0/(1+3)) > 1e-9 {
		t.Errorf("EDwPAvg = %v, want 1", d)
	}
	if d := trajmatch.EDwPSub(a, c); d > 1e-9 {
		t.Errorf("EDwPSub of embedded prefix = %v, want 0", d)
	}

	dist, edits := trajmatch.AlignEDwP(a, c)
	var sum float64
	for _, e := range edits {
		sum += e.Cost
	}
	if math.Abs(sum-dist) > 1e-9 {
		t.Errorf("edit script sums to %v, distance %v", sum, dist)
	}
}

func TestFacadeIndexAndGenerators(t *testing.T) {
	db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(60))
	idx, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{NumVPs: 8, LeafSize: 5, PivotCandidates: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := db[0]
	res, stats, _, _ := idx.SearchKNN(q, 5, nil, nil)
	if len(res) != 5 {
		t.Fatalf("kNN returned %d results", len(res))
	}
	if res[0].Traj.ID != q.ID || res[0].Dist != 0 {
		t.Errorf("self not first: %+v", res[0])
	}
	if stats.DistanceCalls == 0 {
		t.Error("stats not collected")
	}

	edr := trajmatch.NewEDRIndex(db, 60)
	eres, _ := edr.KNN(q, 5)
	if len(eres) != 5 || eres[0].Traj.ID != q.ID {
		t.Errorf("EDR index kNN = %v", eres)
	}

	dtw := trajmatch.NewDTWIndex(db)
	dres, _ := dtw.KNN(q, 5)
	if len(dres) != 5 || dres[0].Traj.ID != q.ID {
		t.Errorf("DTW index kNN = %v", dres)
	}
}

func TestFacadeLatLonIngestion(t *testing.T) {
	tr := trajmatch.FromLatLon(1, [][3]float64{
		{39.9042, 116.4074, 0},   // Beijing
		{39.9052, 116.4074, 60},  // ~111m north
		{39.9052, 116.4094, 120}, // ~170m east
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if l := tr.Length(); l < 200 || l > 350 {
		t.Errorf("trajectory length %vm outside the plausible 200–350m", l)
	}
}

func TestFacadeNoiseAndResample(t *testing.T) {
	db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(10))
	if noisy := trajmatch.InterNoise(db, 0.3, 1); len(noisy) != len(db) {
		t.Error("InterNoise size mismatch")
	}
	if noisy := trajmatch.IntraNoise(db, 0.3, 1); len(noisy) != len(db) {
		t.Error("IntraNoise size mismatch")
	}
	d1, d2 := trajmatch.PhaseNoise(db, 0.3, 1)
	if len(d1) != len(db) || len(d2) != len(db) {
		t.Error("PhaseNoise size mismatch")
	}
	r := trajmatch.PerturbRadius(db, 30)
	if noisy := trajmatch.PerturbNoise(db, 0.2, r, 1); len(noisy) != len(db) {
		t.Error("PerturbNoise size mismatch")
	}
	sp := trajmatch.MedianSegmentLength(db)
	if sp <= 0 {
		t.Fatal("median segment length not positive")
	}
	rs := trajmatch.ResampleAll(db, sp)
	if len(rs) != len(db) {
		t.Error("ResampleAll size mismatch")
	}
}

func TestFacadeMetricsSuite(t *testing.T) {
	ms := trajmatch.Metrics(2.0)
	a := trajmatch.FromXY(1, 0, 0, 1, 0, 2, 0)
	for _, m := range ms {
		if d := m.Dist(a, a); d > 1e-9 {
			t.Errorf("%s self distance %v", m.Name(), d)
		}
	}
}

func TestFacadeIO(t *testing.T) {
	db := trajmatch.GenerateASL(trajmatch.ASLConfig{NumClasses: 2, Instances: 2, Points: 6, Jitter: 0.01, Seed: 1})
	var buf bytes.Buffer
	if err := trajmatch.WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := trajmatch.ReadCSV(&buf)
	if err != nil || len(got) != len(db) {
		t.Fatalf("CSV round trip: %v, %d", err, len(got))
	}
	buf.Reset()
	if err := trajmatch.WriteNDJSON(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err = trajmatch.ReadNDJSON(&buf)
	if err != nil || len(got) != len(db) {
		t.Fatalf("NDJSON round trip: %v, %d", err, len(got))
	}
}

func TestFacadeClassHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set := trajmatch.PickClasses(98, 5, rng)
	if len(set) != 5 {
		t.Fatalf("picked %d classes", len(set))
	}
	db := trajmatch.GenerateASL(trajmatch.ASLConfig{NumClasses: 6, Instances: 2, Points: 6, Jitter: 0.01, Seed: 2})
	sel := trajmatch.SelectClasses(db, map[int]bool{0: true})
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
}

func TestFacadeSplitTrips(t *testing.T) {
	pts := []trajmatch.STPoint{
		trajmatch.P(0, 0, 0), trajmatch.P(1, 0, 60),
		trajmatch.P(9, 9, 5000), trajmatch.P(10, 9, 5060),
	}
	trips := trajmatch.SplitTrips(pts, 900, 900, 0)
	if len(trips) != 2 {
		t.Fatalf("got %d trips", len(trips))
	}
}
