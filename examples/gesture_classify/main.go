// gesture_classify: the Fig. 5(a) scenario as an application. Classify
// sign-language-style gesture trajectories by 1-nearest-neighbour under
// several distance functions and report per-metric accuracy.
package main

import (
	"fmt"
	"math/rand"

	"trajmatch"
)

func main() {
	cfg := trajmatch.DefaultASLConfig()
	cfg.NumClasses = 15
	cfg.Instances = 12
	db := trajmatch.GenerateASL(cfg)
	fmt.Printf("dataset: %d gesture recordings, %d classes\n\n", len(db), cfg.NumClasses)

	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(len(db))
	cut := len(db) * 3 / 4
	var train, test []*trajmatch.Trajectory
	for i, p := range perm {
		if i < cut {
			train = append(train, db[p])
		} else {
			test = append(test, db[p])
		}
	}

	fmt.Printf("%-8s %-10s %s\n", "metric", "accuracy", "errors")
	for _, m := range trajmatch.Metrics(4.0) {
		correct := 0
		for _, q := range test {
			var best *trajmatch.Trajectory
			bestD := 0.0
			for _, t := range train {
				if d := m.Dist(q, t); best == nil || d < bestD {
					best, bestD = t, d
				}
			}
			if best.Label == q.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(test))
		fmt.Printf("%-8s %-10.3f %d/%d\n", m.Name(), acc, len(test)-correct, len(test))
	}

	fmt.Println("\nEDwP classifies without any threshold to tune; the")
	fmt.Println("threshold metrics' accuracy depends on the ε supplied above.")
}
