// pipeline: the end-to-end data-engineering flow a production deployment
// would run — ingest a raw GPS point stream, split it into trips (the
// paper's Beijing preprocessing), validate, bulk-load a TrajTree, persist
// the index to disk, reload it in a fresh process, and serve queries.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"trajmatch"
)

func main() {
	// 1. Simulate a raw device stream: several trips of one cab over a
	//    day, concatenated, with parking gaps between them.
	stream := rawStream()
	fmt.Printf("raw stream: %d points\n", len(stream))

	// 2. Trip splitting: 15-minute gap / 15-minute stationary rule.
	trips := trajmatch.SplitTrips(stream, 15*60, 15*60, 0)
	fmt.Printf("split into %d trips\n", len(trips))

	// 3. Validate and keep the clean ones.
	var clean []*trajmatch.Trajectory
	for _, tr := range trips {
		if err := tr.Validate(); err != nil {
			fmt.Printf("  dropping trip %d: %v\n", tr.ID, err)
			continue
		}
		clean = append(clean, tr)
	}

	// 4. Mix with a synthetic fleet and bulk-load the index.
	fleet := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(400))
	for _, tr := range clean {
		tr.ID += 1_000 // keep IDs disjoint from the fleet's
		fleet = append(fleet, tr)
	}
	idx, err := trajmatch.NewIndex(fleet, trajmatch.IndexOptions{Parallel: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d trips\n", idx.Size())

	// 5. Persist.
	path := filepath.Join(os.TempDir(), "trajtree.gob")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("saved index to %s (%d KiB)\n", path, info.Size()/1024)

	// 6. Reload (as a fresh process would) and query.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	defer os.Remove(path)
	loaded, err := trajmatch.LoadIndex(g)
	if err != nil {
		log.Fatal(err)
	}
	// Serve the reloaded index through the concurrent engine and its
	// unified Search API, the way a fresh process would.
	engine := trajmatch.NewEngineFromIndex(loaded, trajmatch.EngineOptions{})
	ctx := context.Background()
	query := clean[0]
	ans, err := engine.Search(ctx, query, trajmatch.Query{Kind: trajmatch.QueryKNN, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-NN of ingested trip %d after reload:\n", query.ID)
	for i, r := range ans.Results {
		fmt.Printf("  %d. trip %-5d EDwPavg %.4f\n", i+1, r.Traj.ID, r.Dist)
	}

	// 7. Range query: everything within 1.5× the nearest non-self match.
	radius := ans.Results[1].Dist * 1.5
	within, err := engine.Search(ctx, query, trajmatch.Query{Kind: trajmatch.QueryRange, Radius: radius})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d trips within radius %.2f of trip %d\n", len(within.Results), radius, query.ID)
}

// rawStream synthesises a day of one cab: three trips with parking gaps.
func rawStream() []trajmatch.STPoint {
	rng := rand.New(rand.NewSource(11))
	var pts []trajmatch.STPoint
	t := 6.0 * 3600 // 06:00
	x, y := 2000.0, 2000.0
	for trip := 0; trip < 3; trip++ {
		for i := 0; i < 40; i++ {
			x += rng.NormFloat64() * 120
			y += rng.NormFloat64() * 120
			t += 30 + rng.Float64()*30
			pts = append(pts, trajmatch.P(x, y, t))
		}
		t += 3600 // one hour parked
	}
	return pts
}
