// taxi_knn: the paper's headline retrieval scenario. Build a TrajTree over
// a city of taxi trips, then compare indexed k-NN against a sequential scan
// and the EDR index — Figs. 5(j)/6(a) in miniature — and demonstrate
// incremental updates.
package main

import (
	"fmt"
	"log"
	"time"

	"trajmatch"
)

func main() {
	const n = 1500
	fmt.Printf("generating %d taxi trips...\n", n)
	db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(n))

	t0 := time.Now()
	idx, err := trajmatch.NewIndex(db[:n-100], trajmatch.IndexOptions{Parallel: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TrajTree built over %d trips in %v\n", idx.Size(), time.Since(t0).Round(time.Millisecond))

	// Incremental inserts: the last 100 trips arrive after the bulk load.
	t0 = time.Now()
	for _, tr := range db[n-100:] {
		if err := idx.Insert(tr); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted 100 more trips in %v (index now %d)\n",
		time.Since(t0).Round(time.Millisecond), idx.Size())

	query := db[7].Clone()
	query.ID = 1_000_000

	const k = 10
	t0 = time.Now()
	indexed, stats := idx.KNN(query, k)
	tIndexed := time.Since(t0)

	t0 = time.Now()
	scanned := idx.KNNBrute(query, k)
	tScan := time.Since(t0)

	// The EDR competitor follows the paper's setup: EDR needs uniform
	// sampling to be competitive in quality, so it runs over the
	// interpolated database (EDR-I) — and pays for the extra points.
	spacing := trajmatch.MedianSegmentLength(db) / 2
	interp := trajmatch.ResampleAll(db, spacing)
	edrIx := trajmatch.NewEDRIndex(interp, 60)
	iq := trajmatch.Resample(query, spacing)
	t0 = time.Now()
	edrIx.KNN(iq, k)
	tEDR := time.Since(t0)

	fmt.Printf("\n%d-NN latency: TrajTree %v | EDwP scan %v | EDR-I index %v\n",
		k, tIndexed.Round(time.Microsecond), tScan.Round(time.Microsecond), tEDR.Round(time.Microsecond))
	fmt.Printf("TrajTree computed %d exact distances (%.1f%% of the database), pruned %d nodes\n",
		stats.DistanceCalls, 100*float64(stats.DistanceCalls)/float64(idx.Size()), stats.NodesPruned)

	fmt.Println("\nresults (indexed vs sequential scan):")
	for i := range indexed {
		match := "✓"
		if indexed[i].Dist != scanned[i].Dist {
			match = "✗"
		}
		fmt.Printf("  %2d. trip %-5d dist %.5f %s\n", i+1, indexed[i].Traj.ID, indexed[i].Dist, match)
	}

	// Deleting the best match re-ranks the answers.
	best := indexed[0].Traj.ID
	idx.Delete(best)
	after, _ := idx.KNN(query, 1)
	fmt.Printf("\nafter deleting trip %d, nearest is now trip %d (dist %.5f)\n",
		best, after[0].Traj.ID, after[0].Dist)
}
