// taxi_knn: the paper's headline retrieval scenario. Build a sharded
// engine over a city of taxi trips, then compare indexed k-NN through
// the unified Search API against a sequential scan and the EDR index —
// Figs. 5(j)/6(a) in miniature — and demonstrate incremental updates.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"trajmatch"
)

func main() {
	const n = 1500
	fmt.Printf("generating %d taxi trips...\n", n)
	db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(n))
	ctx := context.Background()

	t0 := time.Now()
	engine, err := trajmatch.NewEngine(db[:n-100],
		trajmatch.IndexOptions{Parallel: true, Seed: 1},
		trajmatch.EngineOptions{CacheSize: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine built over %d trips in %v\n", engine.Size(), time.Since(t0).Round(time.Millisecond))

	// Incremental inserts: the last 100 trips arrive after the bulk load.
	t0 = time.Now()
	for _, tr := range db[n-100:] {
		if err := engine.Insert(tr); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted 100 more trips in %v (index now %d)\n",
		time.Since(t0).Round(time.Millisecond), engine.Size())

	query := db[7].Clone()
	query.ID = 1_000_000

	const k = 10
	t0 = time.Now()
	ans, err := engine.Search(ctx, query, trajmatch.Query{Kind: trajmatch.QueryKNN, K: k, WithStats: true})
	if err != nil {
		log.Fatal(err)
	}
	tIndexed := time.Since(t0)

	t0 = time.Now()
	scanned := bruteScan(db, query, k)
	tScan := time.Since(t0)

	// The EDR competitor follows the paper's setup: EDR needs uniform
	// sampling to be competitive in quality, so it runs over the
	// interpolated database (EDR-I) — and pays for the extra points.
	spacing := trajmatch.MedianSegmentLength(db) / 2
	interp := trajmatch.ResampleAll(db, spacing)
	edrIx := trajmatch.NewEDRIndex(interp, 60)
	iq := trajmatch.Resample(query, spacing)
	t0 = time.Now()
	edrIx.KNN(iq, k)
	tEDR := time.Since(t0)

	fmt.Printf("\n%d-NN latency: TrajTree %v | EDwP scan %v | EDR-I index %v\n",
		k, tIndexed.Round(time.Microsecond), tScan.Round(time.Microsecond), tEDR.Round(time.Microsecond))
	fmt.Printf("TrajTree computed %d exact distances (%.1f%% of the database), pruned %d nodes\n",
		ans.Stats.DistanceCalls, 100*float64(ans.Stats.DistanceCalls)/float64(engine.Size()), ans.Stats.NodesPruned)

	fmt.Println("\nresults (indexed vs sequential scan):")
	for i, r := range ans.Results {
		match := "✓"
		if r.Dist != scanned[i] {
			match = "✗"
		}
		fmt.Printf("  %2d. trip %-5d dist %.5f %s\n", i+1, r.Traj.ID, r.Dist, match)
	}

	// Deleting the best match re-ranks the answers.
	best := ans.Results[0].Traj.ID
	engine.Delete(best)
	after, err := engine.Search(ctx, query, trajmatch.Query{Kind: trajmatch.QueryKNN, K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter deleting trip %d, nearest is now trip %d (dist %.5f)\n",
		best, after.Results[0].Traj.ID, after.Results[0].Dist)
}

// bruteScan is the "EDwP Sequential Scan" competitor: the k smallest
// EDwPavg distances over the whole database, no index.
func bruteScan(db []*trajmatch.Trajectory, q *trajmatch.Trajectory, k int) []float64 {
	ds := make([]float64, len(db))
	for i, tr := range db {
		ds[i] = trajmatch.EDwPAvg(q, tr)
	}
	sort.Float64s(ds)
	if len(ds) > k {
		ds = ds[:k]
	}
	return ds
}
