// Quickstart: compute EDwP between trajectories sampled at different rates,
// inspect the edit script, and run a k-NN query through TrajTree.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"trajmatch"
)

func main() {
	// Two recordings of the same street corner turn: one device sampled 4
	// points, the other 7. Lock-step or threshold metrics disagree wildly;
	// EDwP sees through the sampling difference.
	sparse := trajmatch.NewTrajectory(1, []trajmatch.STPoint{
		trajmatch.P(0, 0, 0),
		trajmatch.P(120, 0, 30),
		trajmatch.P(120, 90, 60),
		trajmatch.P(120, 200, 95),
	})
	dense := trajmatch.NewTrajectory(2, []trajmatch.STPoint{
		trajmatch.P(0, 0, 0),
		trajmatch.P(40, 0, 10),
		trajmatch.P(80, 0, 20),
		trajmatch.P(120, 0, 30),
		trajmatch.P(120, 60, 50),
		trajmatch.P(120, 130, 72),
		trajmatch.P(120, 200, 95),
	})

	fmt.Printf("EDwP(sparse, dense)    = %.4f  (same shape → 0)\n",
		trajmatch.EDwP(sparse, dense))
	fmt.Printf("EDwPavg(sparse, dense) = %.4f\n", trajmatch.EDwPAvg(sparse, dense))

	// A genuinely different route for contrast.
	other := trajmatch.FromXY(3, 0, 0, 120, 0, 240, 0, 360, 0)
	fmt.Printf("EDwPavg(sparse, other) = %.4f\n\n", trajmatch.EDwPAvg(sparse, other))

	// The edit script shows how EDwP aligned the two samplings: replacements
	// consume matched pieces, inserts split segments at projected points.
	dist, edits := trajmatch.AlignEDwP(sparse, dense)
	fmt.Printf("alignment of sparse↔dense, total cost %.4f:\n", dist)
	for i, e := range edits {
		fmt.Printf("  %2d. %-4s cost %8.4f  A[%.0f,%.0f→%.0f,%.0f] ↔ B[%.0f,%.0f→%.0f,%.0f]\n",
			i+1, e.Kind, e.Cost,
			e.APiece[0].X, e.APiece[0].Y, e.APiece[1].X, e.APiece[1].Y,
			e.BPiece[0].X, e.BPiece[0].Y, e.BPiece[1].X, e.BPiece[1].Y)
	}

	// Index a small synthetic city and ask for the query's 5 nearest
	// trips through the unified Search API. The context bounds the query:
	// a fired deadline would abort the search down in the dynamic program.
	db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(500))
	engine, err := trajmatch.NewEngine(db,
		trajmatch.IndexOptions{Parallel: true, Seed: 1}, trajmatch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	query := db[42]
	ans, err := engine.Search(ctx, query, trajmatch.Query{
		Kind: trajmatch.QueryKNN, K: 5, WithStats: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-NN of trip %d over %d trips "+
		"(%d exact distances computed, %d nodes pruned):\n",
		query.ID, engine.Size(), ans.Stats.DistanceCalls, ans.Stats.NodesPruned)
	for rank, r := range ans.Results {
		fmt.Printf("  %d. trip %-4d EDwPavg %.4f\n", rank+1, r.Traj.ID, r.Dist)
	}
}
