// noise_robustness: Section V-C as an application. Inject each of the
// paper's four sampling-noise models into a taxi database and measure how
// much every metric's k-NN ranking drifts (Spearman correlation against the
// clean ranking, computed exactly as the paper prescribes).
package main

import (
	"fmt"

	"trajmatch"
	"trajmatch/internal/eval"
)

func main() {
	sc := eval.Scale{TaxiN: 150, Queries: 4, Folds: 5, ASLInstances: 8, Seed: 1}
	fmt.Printf("database: %d synthetic taxi trips; k = 10; %d queries averaged\n\n",
		sc.TaxiN, sc.Queries)

	kinds := []struct {
		name string
		kind eval.NoiseKind
		pct  float64
	}{
		{"inter-trajectory sampling (Fig. 5b)", eval.NoiseInter, 0.25},
		{"intra-trajectory sampling (Fig. 5d)", eval.NoiseIntra, 0.25},
		{"phase variation (Fig. 5f)", eval.NoisePhase, 0.25},
		{"perturbation (Fig. 5h)", eval.NoisePerturb, 0.25},
	}
	for _, nz := range kinds {
		ss := eval.RobustnessVsK(sc, nz.kind, nz.pct, []int{10})
		fmt.Printf("%s at %.0f%% noise:\n", nz.name, nz.pct*100)
		for _, s := range ss {
			bar := ""
			n := int(s.Y[0] * 40)
			for i := 0; i < n; i++ {
				bar += "█"
			}
			fmt.Printf("  %-6s %6.3f %s\n", s.Name, s.Y[0], bar)
		}
		fmt.Println()
	}
	fmt.Println("1.0 = ranking unchanged by the noise. EDwP's projections absorb")
	fmt.Println("re-sampling exactly, so its correlation stays at the top.")

	// The same robustness, shown on a single concrete pair.
	db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(1))
	orig := db[0]
	dense := trajmatch.InterNoise(db, 1.0, 3)[0]
	fmt.Printf("\nconcrete pair: trip resampled %d → %d points: EDwP = %.6f, EDR = %.0f\n",
		orig.NumPoints(), dense.NumPoints(),
		trajmatch.EDwP(orig, dense),
		trajmatch.MetricEDR{Eps: 60}.Dist(orig, dense))
}
