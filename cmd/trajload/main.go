// Command trajload is a closed-loop load generator for trajserve: N
// workers each keep exactly one /v1/search request in flight against a
// target (standalone, shard node or cluster router — the wire format is
// identical), drawing query trajectories from a synthetic pool and
// mixing k-NN and range kinds per -mix. When the run ends it reports
// throughput and client-observed latency percentiles (p50/p95/p99) as
// JSON — the numbers BENCH_10.json compares across deployment shapes.
//
// Closed-loop means the offered load adapts to the server: a worker
// issues its next query only when the previous answer lands, so the
// measured latencies are uncontaminated by client-side queueing and
// -workers is the concurrency, not a rate.
//
// With -selfcheck the command needs no running server: it builds an
// in-process engine over the synthetic corpus, serves it over a
// loopback listener, and loads that — the CI smoke mode (-selfcheck
// -duration 2s) that exercises the whole path in seconds.
//
// Usage:
//
//	trajload -addr http://localhost:8080 -duration 30s -workers 8 -k 10 -mix 0.8 -o load.json
//	trajload -selfcheck -duration 2s -n 500
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"trajmatch"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target base URL (e.g. http://localhost:8080); empty requires -selfcheck")
		duration  = flag.Duration("duration", 10*time.Second, "measurement window")
		workers   = flag.Int("workers", 4, "closed-loop workers (concurrency)")
		k         = flag.Int("k", 10, "k of the k-NN queries")
		radius    = flag.Float64("radius", 500, "radius of the range queries, corpus units")
		mix       = flag.Float64("mix", 0.8, "fraction of queries that are k-NN (the rest are range)")
		metric    = flag.String("metric", "", "Query.Metric to send (empty = server default)")
		queries   = flag.Int("queries", 200, "size of the synthetic query pool")
		n         = flag.Int("n", 1000, "corpus size of the -selfcheck in-process engine")
		shardsF   = flag.Int("shards", 4, "shard count of the -selfcheck engine")
		seed      = flag.Int64("seed", 1, "query-pool (and -selfcheck corpus) seed")
		out       = flag.String("o", "", "write the JSON report here (default stdout)")
		selfcheck = flag.Bool("selfcheck", false, "build and load an in-process engine instead of a remote target")
	)
	flag.Parse()

	if *mix < 0 || *mix > 1 {
		fatalf("-mix must be in [0,1]")
	}
	if *workers < 1 {
		fatalf("-workers must be positive")
	}

	// The query pool is synthetic taxi traffic offset from the corpus
	// seed, so -selfcheck queries are not corpus members verbatim.
	qcfg := trajmatch.DefaultTaxiConfig(*queries)
	qcfg.Seed = *seed + 7919
	pool := trajmatch.GenerateTaxi(qcfg)

	target := *addr
	client := &http.Client{}
	if *selfcheck {
		if *addr != "" {
			fatalf("-selfcheck and -addr are mutually exclusive")
		}
		cfg := trajmatch.DefaultTaxiConfig(*n)
		cfg.Seed = *seed
		db := trajmatch.GenerateTaxi(cfg)
		engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{Parallel: true, Seed: *seed},
			trajmatch.EngineOptions{Shards: *shardsF})
		if err != nil {
			fatalf("selfcheck engine: %v", err)
		}
		srv := httptest.NewServer(trajmatch.NewAPIHandler(engine, trajmatch.HandlerOptions{}))
		defer srv.Close()
		target = srv.URL
		client = srv.Client()
		fmt.Fprintf(os.Stderr, "trajload: selfcheck engine up: %d trajectories in %d shards at %s\n",
			engine.Size(), engine.Shards(), target)
	}
	if target == "" {
		fatalf("-addr is required (or -selfcheck)")
	}

	report, err := run(loadConfig{
		target:  target,
		client:  client,
		pool:    pool,
		d:       *duration,
		workers: *workers,
		k:       *k,
		radius:  *radius,
		mix:     *mix,
		metric:  *metric,
		seed:    *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatalf("write report: %v", err)
	}
	if report.Errors > 0 && report.Requests == 0 {
		fatalf("every request failed (last: %s)", report.LastError)
	}
}

type loadConfig struct {
	target  string
	client  *http.Client
	pool    []*trajmatch.Trajectory
	d       time.Duration
	workers int
	k       int
	radius  float64
	mix     float64
	metric  string
	seed    int64
}

// Percentiles is one latency distribution in milliseconds.
type Percentiles struct {
	Count  int     `json:"count"`
	P50    float64 `json:"p50_ms"`
	P95    float64 `json:"p95_ms"`
	P99    float64 `json:"p99_ms"`
	Mean   float64 `json:"mean_ms"`
	Max    float64 `json:"max_ms"`
	Errors int     `json:"errors,omitempty"`
}

// Report is trajload's JSON output.
type Report struct {
	Target      string                 `json:"target"`
	GoVersion   string                 `json:"go_version"`
	Workers     int                    `json:"workers"`
	DurationSec float64                `json:"duration_sec"`
	MixKNN      float64                `json:"mix_knn"`
	K           int                    `json:"k"`
	Radius      float64                `json:"radius"`
	Requests    int                    `json:"requests"`
	Errors      int                    `json:"errors"`
	QPS         float64                `json:"qps"`
	Latency     Percentiles            `json:"latency"`
	PerKind     map[string]Percentiles `json:"per_kind"`
	LastError   string                 `json:"last_error,omitempty"`
}

// sample is one completed request: its kind, latency and disposition.
type sample struct {
	kind string
	lat  time.Duration
	err  bool
}

func run(cfg loadConfig) (Report, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.d)
	defer cancel()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		all     []sample
		lastErr string
	)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*104729))
			var local []sample
			var localErr string
			for ctx.Err() == nil {
				q := cfg.pool[rng.Intn(len(cfg.pool))]
				kind, body := buildRequest(cfg, q, rng)
				t0 := time.Now()
				err := postSearch(ctx, cfg.client, cfg.target, body)
				lat := time.Since(t0)
				if ctx.Err() != nil && err != nil {
					break // the deadline cut this request off; don't count it
				}
				s := sample{kind: kind, lat: lat, err: err != nil}
				if err != nil {
					localErr = err.Error()
				}
				local = append(local, s)
			}
			mu.Lock()
			all = append(all, local...)
			if localErr != "" {
				lastErr = localErr
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	rep := Report{
		Target:      cfg.target,
		GoVersion:   runtime.Version(),
		Workers:     cfg.workers,
		DurationSec: cfg.d.Seconds(),
		MixKNN:      cfg.mix,
		K:           cfg.k,
		Radius:      cfg.radius,
		PerKind:     map[string]Percentiles{},
		LastError:   lastErr,
	}
	byKind := map[string][]sample{}
	for _, s := range all {
		if s.err {
			rep.Errors++
		} else {
			rep.Requests++
		}
		byKind[s.kind] = append(byKind[s.kind], s)
	}
	rep.QPS = float64(rep.Requests) / cfg.d.Seconds()
	rep.Latency = percentiles(all)
	for kind, ss := range byKind {
		rep.PerKind[kind] = percentiles(ss)
	}
	return rep, nil
}

// buildRequest draws the next query: kind by mix, body ready to POST.
func buildRequest(cfg loadConfig, q *trajmatch.Trajectory, rng *rand.Rand) (string, []byte) {
	req := map[string]any{
		"query": wireTraj(q),
	}
	if cfg.metric != "" {
		req["metric"] = cfg.metric
	}
	kind := "knn"
	if rng.Float64() >= cfg.mix {
		kind = "range"
		req["kind"] = "range"
		req["radius"] = cfg.radius
	} else {
		req["kind"] = "knn"
		req["k"] = cfg.k
	}
	body, _ := json.Marshal(req)
	return kind, body
}

func wireTraj(t *trajmatch.Trajectory) map[string]any {
	pts := make([][3]float64, len(t.Points))
	for i, p := range t.Points {
		pts[i] = [3]float64{p.X, p.Y, p.T}
	}
	return map[string]any{"id": t.ID, "points": pts}
}

func postSearch(ctx context.Context, client *http.Client, target string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	return nil
}

// percentiles summarises the successful samples' latencies.
func percentiles(ss []sample) Percentiles {
	var lats []time.Duration
	errs := 0
	for _, s := range ss {
		if s.err {
			errs++
			continue
		}
		lats = append(lats, s.lat)
	}
	p := Percentiles{Count: len(lats), Errors: errs}
	if len(lats) == 0 {
		return p
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	p.P50 = ms(at(0.50))
	p.P95 = ms(at(0.95))
	p.P99 = ms(at(0.99))
	p.Mean = ms(sum / time.Duration(len(lats)))
	p.Max = ms(lats[len(lats)-1])
	return p
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trajload: "+format+"\n", args...)
	os.Exit(1)
}
