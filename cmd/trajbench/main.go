// Command trajbench regenerates the paper's evaluation artifacts: every
// figure of Section V as a printed series table, at a configurable scale.
//
// Usage:
//
//	trajbench -exp all                 # every figure at the default scale
//	trajbench -exp 5a,5b,6c            # selected figures
//	trajbench -exp 5j -taxi 2000 -q 20 # larger run for the timing figures
//
// Absolute numbers depend on this machine; the reproduction targets are the
// shapes the paper reports (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"trajmatch"
	"trajmatch/internal/eval"
	"trajmatch/internal/trajtree"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids: 5a,5b,...,6f or all")
		taxiN   = flag.Int("taxi", 300, "taxi database size")
		aslInst = flag.Int("asl", 10, "ASL instances per class")
		queries = flag.Int("q", 5, "queries averaged per data point")
		folds   = flag.Int("folds", 5, "cross-validation folds")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	sc := eval.Scale{TaxiN: *taxiN, ASLInstances: *aslInst, Queries: *queries, Folds: *folds, Seed: *seed}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(id string) bool { return all || want[id] }

	if run("table1") {
		printTable1()
	}
	if run("5a") {
		print5a(sc)
	}
	noise := []struct {
		idK, idN, title string
		kind            eval.NoiseKind
		pct             float64
	}{
		{"5b", "5c", "inter-trajectory sampling variance", eval.NoiseInter, 0.05},
		{"5d", "5e", "intra-trajectory sampling variance", eval.NoiseIntra, 0.05},
		{"5f", "5g", "phase variation", eval.NoisePhase, 0.05},
		{"5h", "5i", "threshold dependency (perturbation)", eval.NoisePerturb, 0.10},
	}
	for _, nz := range noise {
		if run(nz.idK) {
			ss := eval.RobustnessVsK(sc, nz.kind, nz.pct, nil)
			fmt.Print(eval.FormatSeries(
				fmt.Sprintf("Fig. %s — Spearman correlation vs k, %s (n=%.0f%%)", nz.idK, nz.title, nz.pct*100),
				"k", ss))
			fmt.Println()
		}
		if run(nz.idN) {
			ss := eval.RobustnessVsN(sc, nz.kind, nil)
			fmt.Print(eval.FormatSeries(
				fmt.Sprintf("Fig. %s — Spearman correlation vs noise %%, %s (k=10)", nz.idN, nz.title),
				"noise%", ss))
			fmt.Println()
		}
	}
	if run("5j") {
		print5j(sc)
	}
	if run("6a") {
		print6a(sc)
	}
	if run("6b") {
		ss, err := eval.QueryVsTheta(sc, nil, 10)
		exitOn(err)
		fmt.Print(eval.FormatSeries("Fig. 6b — query seconds vs θ (k=10)", "theta", ss))
		fmt.Println()
	}
	if run("6c") {
		ss, err := eval.UBFactorVsVPs(sc, nil)
		exitOn(err)
		fmt.Print(eval.FormatSeries("Fig. 6c — UB-Factor vs number of VPs (k=10)", "VPs", ss))
		fmt.Println()
	}
	if run("6d") {
		ss, err := eval.UBFactorVsK(sc, nil, 80)
		exitOn(err)
		fmt.Print(eval.FormatSeries("Fig. 6d — UB-Factor vs k (80 VPs)", "k", ss))
		fmt.Println()
	}
	if run("6e") {
		ss, err := eval.BuildTimes(sc, nil, nil)
		exitOn(err)
		fmt.Print(eval.FormatSeries("Fig. 6e — build seconds vs database size", "n", ss))
		fmt.Println()
	}
	if run("6f") {
		ss, err := eval.BuildTimes(sc, nil, []float64{0.2, 0.4, 0.6, 0.8, 0.95})
		exitOn(err)
		fmt.Print(eval.FormatSeries("Fig. 6f — build seconds vs θ", "theta", ss))
		fmt.Println()
	}
}

// printTable1 prints the Tables I/II robustness matrix by running the same
// equivalent-vs-control scenarios the test suite asserts (tablei_test.go).
func printTable1() {
	type scen struct {
		name           string
		a1, a2, b1, b2 *trajmatch.Trajectory
	}
	mk := func(xy ...[]float64) []*trajmatch.Trajectory {
		out := make([]*trajmatch.Trajectory, len(xy))
		for i, c := range xy {
			out[i] = trajmatch.FromXY(i+1, c...)
		}
		return out
	}
	// Dwell time shift: same contour, one trajectory pauses.
	dwell := mk(
		[]float64{-20, 0, -10, 0, 0, 0, 0, 0, 0, 0, 10, 0, 20, 0},
		[]float64{-20, 0, -10, 0, 0, 0, 10, 0, 20, 0},
		[]float64{-20, 0, -10, 0, 0, 0, 0, 0, 0, 0, 10, 0, 20, 0},
		[]float64{-20, 10, -10, 10, 0, 10, 0, 10, 0, 10, 10, 10, 20, 10},
	)
	// Inter-sampling: sparse vs dense same contour; control within ε.
	inter := mk(
		[]float64{0, 0, 0, 33, 0, 66, 0, 100},
		[]float64{0, 0, 0, 10, 0, 20, 0, 30, 0, 40, 0, 50, 0, 60, 0, 70, 0, 80, 0, 90, 0, 100},
		[]float64{0, 0, 0, 10, 0, 20, 0, 30, 0, 40, 0, 50, 0, 60, 0, 70, 0, 80, 0, 90, 0, 100},
		[]float64{1.5, 0, 1.5, 10, 1.5, 20, 1.5, 30, 1.5, 40, 1.5, 50, 1.5, 60, 1.5, 70, 1.5, 80, 1.5, 90, 1.5, 100},
	)
	// Phase: offset sampling of the same contour; control parallel far away.
	phase := mk(
		[]float64{0, 0, 0, 10, 0, 20, 0, 30, 0, 40, 0, 50, 0, 60, 0, 70, 0, 80, 0, 90, 0, 100},
		[]float64{0, 4.9, 0, 14.9, 0, 24.9, 0, 34.9, 0, 44.9, 0, 54.9, 0, 64.9, 0, 74.9, 0, 84.9, 0, 94.9, 0, 104.9},
		[]float64{0, 0, 0, 10, 0, 20, 0, 30, 0, 40, 0, 50, 0, 60, 0, 70, 0, 80, 0, 90, 0, 100},
		[]float64{25, 0, 25, 10, 25, 20, 25, 30, 25, 40, 25, 50, 25, 60, 25, 70, 25, 80, 25, 90, 25, 100},
	)
	scens := []scen{
		{"time shifts", dwell[0], dwell[1], dwell[2], dwell[3]},
		{"inter-sampling", inter[0], inter[1], inter[2], inter[3]},
		{"phase", phase[0], phase[1], phase[2], phase[3]},
	}
	metrics := trajmatch.Metrics(2.0)
	fmt.Println("Table I/II — robust = equivalent pair scored closer than control pair")
	fmt.Printf("%-8s", "metric")
	for _, s := range scens {
		fmt.Printf("%16s", s.name)
	}
	fmt.Println()
	for _, m := range metrics {
		fmt.Printf("%-8s", m.Name())
		for _, s := range scens {
			verdict := "✗"
			if m.Dist(s.a1, s.a2) < m.Dist(s.b1, s.b2) {
				verdict = "✓"
			}
			fmt.Printf("%16s", verdict)
		}
		fmt.Println()
	}
	fmt.Println()
}

func print5a(sc eval.Scale) {
	ss := eval.Fig5a(sc, nil)
	fmt.Print(eval.FormatSeries("Fig. 5a — classification accuracy vs number of classes (ASL-style)", "classes", ss))
	fmt.Println()
}

func print5j(sc eval.Scale) {
	db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(sc.TaxiN))
	rng := rand.New(rand.NewSource(sc.Seed + 41))
	queries := make([]*trajmatch.Trajectory, sc.Queries)
	for i := range queries {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 1_000_000 + i
		queries[i] = q
	}
	ss, err := eval.QueryCompetitors(db, queries, []int{5, 10, 20, 30, 40, 50},
		trajtree.Options{Seed: sc.Seed, NumVPs: 40, PivotCandidates: 32, Parallel: true})
	exitOn(err)
	fmt.Print(eval.FormatSeries("Fig. 5j — mean query seconds vs k", "k", ss))
	fmt.Println()
}

func print6a(sc eval.Scale) {
	sizes := []int{sc.TaxiN / 4, sc.TaxiN / 2, sc.TaxiN}
	series := make([]eval.Series, 0, 4)
	for si, n := range sizes {
		db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(n))
		rng := rand.New(rand.NewSource(sc.Seed + 43))
		queries := make([]*trajmatch.Trajectory, sc.Queries)
		for i := range queries {
			q := db[rng.Intn(len(db))].Clone()
			q.ID = 1_000_000 + i
			queries[i] = q
		}
		ss, err := eval.QueryCompetitors(db, queries, []int{10},
			trajtree.Options{Seed: sc.Seed, NumVPs: 40, PivotCandidates: 32, Parallel: true})
		exitOn(err)
		if si == 0 {
			for _, s := range ss {
				series = append(series, eval.Series{Name: s.Name})
			}
		}
		for i, s := range ss {
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, s.Y[0])
		}
	}
	fmt.Print(eval.FormatSeries("Fig. 6a — mean query seconds vs database size (k=10)", "n", series))
	fmt.Println()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "trajbench: %v\n", err)
		os.Exit(1)
	}
}
