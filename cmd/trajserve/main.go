// Command trajserve serves k-NN, range and insert traffic over a TrajTree
// index via JSON-over-HTTP. It loads a trajectory database, bulk-loads the
// index, and exposes the concurrent engine of internal/server:
//
//	POST /knn        {"query": {"id": 1, "points": [[x,y,t], ...]}, "k": 10}
//	POST /knn/batch  {"queries": [...], "k": 10}
//	POST /range      {"query": {...}, "radius": 250.0}
//	POST /insert     {"trajectories": [{...}, ...]}
//	GET  /stats
//	GET  /healthz
//
// GET /stats includes the bounded-kernel counters (distance_calls,
// early_abandons, lower_bound_calls, ...) accumulated over all queries.
// With -pprof the standard net/http/pprof handlers are mounted under
// /debug/pprof/ for live CPU, heap and contention profiling.
//
// Usage:
//
//	trajgen -kind taxi -n 2000 -o db.csv
//	trajserve -db db.csv -addr :8080 -pprof
//	curl -s localhost:8080/knn -d '{"query":{"id":0,"points":[[0,0,0],[100,50,60]]},"k":5}'
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"trajmatch"
)

func main() {
	var (
		dbPath  = flag.String("db", "", "database file (csv or ndjson by extension)")
		addr    = flag.String("addr", ":8080", "listen address")
		theta   = flag.Float64("theta", 0.8, "TrajTree θ (diversity drop threshold)")
		vps     = flag.Int("vps", 80, "vantage points per node")
		cumula  = flag.Bool("cumulative", false, "use cumulative EDwP instead of EDwPavg")
		cache   = flag.Int("cache", 0, "LRU result-cache entries (0 = default 1024, negative disables)")
		workers = flag.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "index build seed")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *dbPath == "" {
		fatalf("-db is required")
	}

	db := readFile(*dbPath)
	t0 := time.Now()
	engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{
		Theta:      *theta,
		NumVPs:     *vps,
		Cumulative: *cumula,
		Parallel:   true,
		Seed:       *seed,
	}, trajmatch.EngineOptions{CacheSize: *cache, Workers: *workers})
	if err != nil {
		fatalf("build: %v", err)
	}
	log.Printf("indexed %d trajectories (height %d) in %v",
		engine.Size(), engine.Height(), time.Since(t0).Round(time.Millisecond))

	handler := trajmatch.NewHTTPHandler(engine)
	if *pprofOn {
		// Opt-in profiling: the handlers are registered explicitly on the
		// API mux, which is the only mux this server ever serves. (The
		// net/http/pprof import also registers on http.DefaultServeMux as
		// an init side effect — do not serve DefaultServeMux anywhere in
		// this binary, or profiling would be exposed regardless of -pprof.)
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("trajserve listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fatalf("serve: %v", err)
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(t0).Round(time.Microsecond))
	})
}

func readFile(path string) []*trajmatch.Trajectory {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var db []*trajmatch.Trajectory
	if strings.HasSuffix(path, ".ndjson") || strings.HasSuffix(path, ".jsonl") {
		db, err = trajmatch.ReadNDJSON(f)
	} else {
		db, err = trajmatch.ReadCSV(f)
	}
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return db
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trajserve: "+format+"\n", args...)
	os.Exit(1)
}
