// Command trajserve serves k-NN, range, sub-trajectory and update
// traffic over sharded metric indexes via JSON-over-HTTP. It loads a
// trajectory database (or a previously written snapshot), bulk-loads
// hash-partitioned index shards in parallel for every metric named by
// -metrics (edwp — the TrajTree index and the default — plus the flat
// dtw and edr comparison indexes, all over the same corpus), and exposes
// the concurrent engine of internal/server on the versioned /v1 API:
//
//	POST /v1/search    {"kind": "knn"|"range"|"subknn", "metric": "edwp"|"dtw"|"edr",
//	                    "query": {"id": 1, "points": [[x,y,t], ...]} | "queries": [...],
//	                    "k": 10, "radius": 250.0, "limit": 0, "max_evals": 0,
//	                    "prefilter": false, "with_stats": true}
//	POST /v1/insert    {"trajectories": [{...}, ...]}
//	POST /v1/delete    {"ids": [17, 42]}
//	POST /v1/append    {"id": 7, "label": 1, "points": [[x,y,t], ...]}
//	POST /v1/seal      {"id": 7}
//	POST /v1/watch     {"pattern": {"id": -1, "points": [...]}, "threshold": 250.0} (or "k": 5)
//	POST /v1/unwatch   {"watch": 3}
//	GET  /v1/events    ?since=N&max=M&wait_ms=T (long-poll) | ?sse=1 (SSE)
//	POST /v1/rebuild   (no body)
//	POST /v1/snapshot  (no body; requires -snapshot)
//	GET  /v1/stats
//	GET  /v1/healthz
//
// One search endpoint serves every query kind and metric; a "queries"
// array batches over the engine's worker pool. Failures answer the JSON
// envelope {"error": ..., "code": ...} — an unregistered "metric" is 400
// {"code": "unknown_metric"}, a registered one not booted by -metrics is
// 400 {"code": "metric_not_loaded"}, and operations the loaded backends
// cannot perform (updates or sub-trajectory search with dtw/edr loaded)
// are 501 {"code": "not_implemented"}. With -query-timeout every search
// request runs under a deadline honoured cooperatively down to the
// distance dynamic programs of every metric (an expiry answers 504
// {"code": "deadline_exceeded"}), and a client disconnect cancels its
// query the same way. The pre-versioning routes (/knn, /knn/batch,
// /range, /insert, /delete, /rebuild, /snapshot, /stats, /healthz) keep
// answering with their original wire shapes plus a "Deprecation: true"
// header naming the /v1 successor.
//
// GET /v1/stats includes the bounded-kernel counters (distance_calls,
// early_abandons, lower_bound_calls, ...) accumulated over all queries,
// a per-metric breakdown with each backend's capability set, and a
// per-shard size/height breakdown. With -pprof the standard
// net/http/pprof handlers are mounted under /debug/pprof/ for live CPU,
// heap and contention profiling.
//
// With -prefilter, the server builds the sketch/LSH candidate prefilter
// at boot (one sketch index per shard; -sketch-* tune the parameters,
// which otherwise default sensibly with the grid cell size derived from
// the corpus). Queries opt in per request with "prefilter": true on a
// knn search: each shard's sketch admits a small candidate set and the
// backend verifies it exactly, trading a little recall for a large cut
// in exact distance evaluations; with_stats then reports
// prefilter_candidates and prefilter_skipped.
//
// With -snapshot DIR, the server loads the snapshot on boot when DIR
// holds a manifest (skipping the bulk build entirely; the shard count
// then comes from the manifest, not -shards; the manifest's recorded
// sketch parameters re-arm the prefilter regardless of -prefilter) and
// arms POST /snapshot to write one. SIGINT/SIGTERM drain in-flight
// requests, then flush and close the write-ahead log, before exit.
//
// /v1/append grows live tracks point by point: each delta is validated,
// WAL-logged (when -wal is set), and searchable by the very next query —
// live tracks answer alongside the sealed index without rebuilding
// anything. /v1/seal folds a finished track into the sharded index;
// with -seal-after a background sealer folds tracks idle longer than
// that duration automatically (checking every -seal-interval).
// /v1/watch registers a standing query — a pattern plus a threshold or
// a top-k budget — matched incrementally as appends arrive, with the
// sketch token gate (when -prefilter is on) skipping the exact kernel
// for watchers whose patterns share no grid cells with the new points.
// Match events stream on /v1/events with monotonic seq numbers
// (at-least-once; consumers resume with ?since), as long-poll JSON or
// SSE. -events-buffer bounds the retained event window.
//
// With -wal DIR, every accepted insert and delete is appended to a
// write-ahead log before it is acknowledged, and a boot replays the log
// on top of the snapshot (or the freshly built index), so acknowledged
// mutations survive a crash between snapshots. -wal-sync picks the
// durability point: "always" (the default) fsyncs before every
// acknowledgement and survives power loss, "interval" fsyncs in the
// background every -wal-sync-interval and bounds the loss window to
// that interval, "never" leaves flushing to the OS page cache (a kill
// -9 still loses nothing; power loss may). A committed POST /snapshot
// truncates the log segments the snapshot subsumes. GET /v1/stats
// reports the log's counters under "wal".
//
// With -role the process takes a place in a cluster instead of serving
// standalone. A shard node (-role shard -cluster-shards N -shard-ids
// 0,3) is the same engine restricted to the named global shards of an
// N-shard hash placement: it builds (or snapshot-loads) only those
// shards, answers exactly its slice of any /v1 query, rejects misrouted
// mutations with 421 not_owned, and adds GET /cluster/v1/info
// (placement discovery) and GET /cluster/v1/snapshot/{file} (snapshot
// shipping) beside the /v1 surface. A router (-role router -nodes
// http://a:8081,http://b:8082) holds no corpus: it discovers each
// node's shards, fans searches out per replica group with its running
// k-th-best bound shipped as the seed limit, retries a slow node's
// replica once under -node-timeout, degrades to a partial answer
// ("degraded": true, per-node health in /v1/stats) when a whole group
// is down, and merges by (distance, ID) — byte-identical to one big
// engine when every group answers. -fetch-snapshot URL|DIR warm-boots a
// replica by shipping a peer's snapshot sections (checksum-verified,
// manifest committed last) into -snapshot before loading. -version (or
// GET /v1/version) prints build, role and shard map.
//
// Usage:
//
//	trajgen -kind taxi -n 2000 -o db.csv
//	trajserve -db db.csv -metrics edwp,dtw,edr -shards 4 -snapshot snap/ -addr :8080 -query-timeout 5s -pprof
//	curl -s localhost:8080/v1/search -d '{"kind":"knn","query":{"id":0,"points":[[0,0,0],[100,50,60]]},"k":5}'
//	curl -s localhost:8080/v1/search -d '{"kind":"knn","metric":"dtw","query":{"id":0,"points":[[0,0,0],[100,50,60]]},"k":5}'
//	curl -s -X POST localhost:8080/v1/snapshot        # persist the index
//	trajserve -snapshot snap/ -addr :8080             # instant warm boot
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//
//	# two-node cluster + router
//	trajserve -role shard -cluster-shards 2 -shard-ids 0 -db db.csv -addr :8081
//	trajserve -role shard -cluster-shards 2 -shard-ids 1 -db db.csv -addr :8082
//	trajserve -role router -nodes http://localhost:8081,http://localhost:8082 -addr :8080
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trajmatch"
)

func main() {
	var (
		dbPath   = flag.String("db", "", "database file (csv or ndjson by extension)")
		addr     = flag.String("addr", ":8080", "listen address")
		theta    = flag.Float64("theta", 0.8, "TrajTree θ (diversity drop threshold)")
		vps      = flag.Int("vps", 80, "vantage points per node")
		cumula   = flag.Bool("cumulative", false, "use cumulative EDwP instead of EDwPavg")
		cache    = flag.Int("cache", 0, "LRU result-cache entries (0 = default 1024, negative disables)")
		workers  = flag.Int("workers", 0, "batch worker-pool / shard fan-out size (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "number of hash-partitioned index shards")
		snapshot = flag.String("snapshot", "", "snapshot directory: load on boot if present, POST /snapshot writes here")
		mmapBoot = flag.Bool("mmap", false, "serve snapshot shards from mmap'd arena files: an O(1) warm boot that aliases the page cache instead of deserialising (falls back per shard to the gob stream when a file is missing or damaged)")
		walDir   = flag.String("wal", "", "write-ahead-log directory: mutations are logged before acknowledgement and replayed on boot")
		walSync  = flag.String("wal-sync", "always", "WAL durability point: always (fsync per acknowledgement), interval (background fsync), never (OS page cache)")
		walInt   = flag.Duration("wal-sync-interval", 0, "background fsync period under -wal-sync interval (0 = default 100ms)")
		seed     = flag.Int64("seed", 1, "index build seed")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		queryTO  = flag.Duration("query-timeout", 0, "per-request search deadline, honoured down to the distance kernels (0 disables)")
		metricsF = flag.String("metrics", "edwp", "comma-separated metric backends to boot over the database (edwp, dtw, edr); the first is the default of /v1/search")

		sealAfter = flag.Duration("seal-after", 0, "background-seal live tracks idle longer than this (0 disables the sealer; explicit POST /v1/seal always works)")
		sealInt   = flag.Duration("seal-interval", 0, "background sealer check period (0 = seal-after/4, at least 1s)")
		eventsBuf = flag.Int("events-buffer", 0, "retained watch-event window for /v1/events resumption (0 = default 4096)")

		role          = flag.String("role", "standalone", "deployment role: standalone, shard (serve -shard-ids of a -cluster-shards placement), router (fan out over -nodes)")
		shardIDs      = flag.String("shard-ids", "", "comma-separated global shard indices this shard node serves (role shard)")
		clusterShards = flag.Int("cluster-shards", 0, "global shard count of the cluster hash placement (role shard; every node and router must agree)")
		nodesF        = flag.String("nodes", "", "comma-separated shard-node base URLs (role router)")
		nodeTimeout   = flag.Duration("node-timeout", 10*time.Second, "per-node request timeout of the router fan-out, and of -fetch-snapshot transfers")
		fetchSrc      = flag.String("fetch-snapshot", "", "warm-boot source: ship this peer's (node URL or directory) snapshot sections for the served shards into -snapshot before boot, unless a snapshot is already there")
		versionF      = flag.Bool("version", false, "print build, role and placement information as JSON and exit")

		prefilter  = flag.Bool("prefilter", false, "build the sketch/LSH candidate prefilter; queries opt in with \"prefilter\": true")
		sketchCell = flag.Float64("sketch-cell", 0, "prefilter grid cell size in corpus units (0 derives from the corpus)")
		sketchShin = flag.Int("sketch-shingle", 0, "prefilter shingle length in cells (0 = default 2)")
		sketchHash = flag.Int("sketch-hashes", 0, "prefilter MinHash signature width (0 = default 64; must be a multiple of -sketch-bands)")
		sketchBand = flag.Int("sketch-bands", 0, "prefilter LSH band count (0 = default 16)")
		sketchMinC = flag.Int("sketch-min-cands", 0, "prefilter per-shard candidate floor (0 = default 32)")
	)
	flag.Parse()

	switch *role {
	case trajmatch.RoleStandalone, trajmatch.RoleShard, trajmatch.RoleRouter:
	default:
		fatalf("-role: unknown role %q (standalone, shard, router)", *role)
	}
	if *versionF {
		printVersion(*role, *clusterShards, *shardIDs, *nodesF)
		return
	}
	if *role == trajmatch.RoleRouter {
		if *dbPath != "" || *shardIDs != "" {
			fatalf("-role router holds no corpus; -db and -shard-ids do not apply")
		}
		runRouter(*addr, *nodesF, *nodeTimeout, *queryTO)
		return
	}

	metricNames, err := parseMetrics(*metricsF)
	if err != nil {
		fatalf("-metrics: %v", err)
	}
	syncPolicy, err := trajmatch.ParseWALSyncPolicy(*walSync)
	if err != nil {
		fatalf("-wal-sync: %v", err)
	}

	eopt := trajmatch.EngineOptions{
		CacheSize:       *cache,
		Workers:         *workers,
		Shards:          *shards,
		SnapshotDir:     *snapshot,
		Mmap:            *mmapBoot,
		WALDir:          *walDir,
		WALSync:         syncPolicy,
		WALSyncInterval: *walInt,
		SealAfter:       *sealAfter,
		SealInterval:    *sealInt,
		EventBuffer:     *eventsBuf,
		Prefilter:       *prefilter,
		Sketch: trajmatch.SketchParams{
			CellSize: *sketchCell,
			Shingle:  *sketchShin,
			Hashes:   *sketchHash,
			Bands:    *sketchBand,
			MinCands: *sketchMinC,
		},
	}
	var owned []int
	if *role == trajmatch.RoleShard {
		owned, err = parseShardIDs(*shardIDs)
		if err != nil {
			fatalf("-shard-ids: %v", err)
		}
		if *clusterShards < 1 {
			fatalf("-role shard requires -cluster-shards (the global placement every node agrees on)")
		}
		eopt.Partition = &trajmatch.EnginePartition{Total: *clusterShards, Owned: owned}
	} else if *shardIDs != "" || *clusterShards != 0 {
		fatalf("-shard-ids and -cluster-shards apply to -role shard only")
	}
	if *nodesF != "" {
		fatalf("-nodes applies to -role router only")
	}

	if *fetchSrc != "" {
		if *snapshot == "" {
			fatalf("-fetch-snapshot requires -snapshot DIR to ship into")
		}
		if trajmatch.EngineSnapshotExists(*snapshot) {
			log.Printf("snapshot %s already present; skipping -fetch-snapshot %s", *snapshot, *fetchSrc)
		} else {
			tf := time.Now()
			info, err := trajmatch.FetchEngineSnapshot(context.Background(), *fetchSrc, *snapshot, owned,
				&http.Client{Timeout: *nodeTimeout})
			if err != nil {
				fatalf("fetch snapshot: %v", err)
			}
			want := owned
			if want == nil {
				want = info.Covered
			}
			log.Printf("shipped snapshot from %s: shards %v of %d in %v",
				*fetchSrc, want, info.Shards, time.Since(tf).Round(time.Millisecond))
		}
	}

	var engine *trajmatch.Engine
	t0 := time.Now()
	switch {
	case trajmatch.EngineSnapshotExists(*snapshot):
		if *dbPath != "" {
			log.Printf("warning: snapshot %s exists; ignoring -db %s and the build flags (-theta/-vps/-cumulative/-seed) — remove the snapshot directory to rebuild from the database", *snapshot, *dbPath)
		}
		// The snapshot persists the tree-backed EDwP set; any other
		// requested metric is rebuilt from the loaded corpus.
		engine, err = trajmatch.LoadEngineSnapshotMetrics(*snapshot, metricNames, eopt)
		if err != nil {
			fatalf("load snapshot: %v", err)
		}
		if engine.Shards() != *shards && *shards != 1 {
			log.Printf("warning: -shards %d ignored; snapshot manifest fixes the shard count at %d (placement depends on it)", *shards, engine.Shards())
		}
		log.Printf("loaded snapshot %s: %d trajectories in %d shards (height %d), metrics %v, in %v",
			*snapshot, engine.Size(), engine.Shards(), engine.Height(), engine.Metrics(),
			time.Since(t0).Round(time.Millisecond))
	case *dbPath != "":
		db := readFile(*dbPath)
		engine, err = trajmatch.NewMultiEngine(db, metricNames, trajmatch.IndexOptions{
			Theta:      *theta,
			NumVPs:     *vps,
			Cumulative: *cumula,
			Parallel:   true,
			Seed:       *seed,
		}, eopt)
		if err != nil {
			fatalf("build: %v", err)
		}
		log.Printf("indexed %d trajectories in %d shards (height %d), metrics %v, in %v",
			engine.Size(), engine.Shards(), engine.Height(), engine.Metrics(),
			time.Since(t0).Round(time.Millisecond))
	default:
		fatalf("-db is required (or -snapshot pointing at an existing snapshot)")
	}
	if *walDir != "" {
		if ws := engine.Stats().WAL; ws != nil {
			log.Printf("wal enabled at %s (sync %s): replayed %d records (%d torn tail bytes dropped)",
				*walDir, ws.Policy, ws.Replayed, ws.DroppedTailBytes)
		}
	}
	if *sealAfter > 0 {
		log.Printf("background sealer armed: folding live tracks idle longer than %v", *sealAfter)
	}
	if engine.PrefilterEnabled() {
		p := engine.SketchParams()
		log.Printf("prefilter enabled: cell %.1f, shingle %d, %d hashes in %d bands, min candidates %d",
			p.CellSize, p.Shingle, p.Hashes, p.Bands, p.MinCands)
	}

	hopt := trajmatch.HandlerOptions{QueryTimeout: *queryTO}
	var handler http.Handler
	if *role == trajmatch.RoleShard {
		vi := trajmatch.NewVersionInfo(trajmatch.RoleShard, engine)
		hopt.Version = &vi
		handler = trajmatch.NewClusterNodeHandler(engine, hopt)
		log.Printf("shard node serving global shards %v of a %d-shard placement", engine.OwnedShards(), engine.ClusterShards())
	} else {
		handler = trajmatch.NewAPIHandler(engine, hopt)
	}
	if *pprofOn {
		// Opt-in profiling: the handlers are registered explicitly on the
		// API mux, which is the only mux this server ever serves. (The
		// net/http/pprof import also registers on http.DefaultServeMux as
		// an init side effect — do not serve DefaultServeMux anywhere in
		// this binary, or profiling would be exposed regardless of -pprof.)
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	// Drained before close: no request is mid-mutation, so the flush
	// makes every acknowledged mutation durable under every -wal-sync
	// policy.
	serveHTTP(*addr, handler, engine.Close)
}

// serveHTTP runs the server until SIGINT/SIGTERM, then drains in-flight
// requests for up to 15 seconds before running closeFn and exiting, so
// load balancers rolling the process do not sever live queries.
func serveHTTP(addr string, handler http.Handler, closeFn func() error) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("trajserve listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received, draining connections")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fatalf("shutdown: %v", err)
		}
		if closeFn != nil {
			if err := closeFn(); err != nil {
				fatalf("close: %v", err)
			}
		}
		log.Printf("shutdown complete")
	}
}

// runRouter boots the stateless fan-out role: discover the nodes'
// placement, serve the public /v1 surface over the router.
func runRouter(addr, nodesCSV string, nodeTimeout, queryTO time.Duration) {
	var nodes []string
	for _, part := range strings.Split(nodesCSV, ",") {
		if s := strings.TrimSpace(part); s != "" {
			nodes = append(nodes, s)
		}
	}
	if len(nodes) == 0 {
		fatalf("-role router requires -nodes (comma-separated shard-node base URLs)")
	}
	if queryTO > 0 && queryTO < nodeTimeout {
		// The per-node timeout already bounds each fan-out leg; a shorter
		// query timeout would be the effective one and the flag pair is
		// probably a mistake.
		log.Printf("warning: -query-timeout %v is shorter than -node-timeout %v; node requests are bounded by the smaller", queryTO, nodeTimeout)
	}
	rt, err := trajmatch.NewClusterRouter(context.Background(), trajmatch.ClusterConfig{
		Nodes:   nodes,
		Timeout: nodeTimeout,
	})
	if err != nil {
		fatalf("router: %v", err)
	}
	st := rt.Stats()
	log.Printf("router fronting %d global shards in %d groups over %d nodes",
		st.ClusterShards, st.ShardGroups, len(st.Nodes))
	serveHTTP(addr, trajmatch.NewClusterRouterHandler(rt), nil)
}

// printVersion writes the -version payload: what GET /v1/version would
// report, assembled from flags alone (no index is built).
func printVersion(role string, clusterShards int, shardIDs, nodesCSV string) {
	v := trajmatch.NewVersionInfo(role, nil)
	if role == trajmatch.RoleShard {
		v.ClusterShards = clusterShards
		if owned, err := parseShardIDs(shardIDs); err == nil {
			v.OwnedShards = owned
		}
	}
	if role == trajmatch.RoleRouter && nodesCSV != "" {
		for _, part := range strings.Split(nodesCSV, ",") {
			if s := strings.TrimSpace(part); s != "" {
				v.Nodes = append(v.Nodes, s)
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// parseShardIDs parses the -shard-ids list ("0,3") into sorted unique
// global indices; range validation against -cluster-shards happens in
// the engine's placement resolution.
func parseShardIDs(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		p := strings.TrimSpace(part)
		if p == "" {
			continue
		}
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad shard index %q", p)
		}
		if id < 0 {
			return nil, fmt.Errorf("negative shard index %d", id)
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard indices given")
	}
	sort.Ints(out)
	return out, nil
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(t0).Round(time.Microsecond))
	})
}

// parseMetrics splits and validates the -metrics list against the
// registered backends, so a typo fails at boot instead of per query.
func parseMetrics(s string) ([]string, error) {
	known := map[string]bool{}
	for _, n := range trajmatch.RegisteredMetrics() {
		known[n] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown metric %q (registered: %s)", name, strings.Join(trajmatch.RegisteredMetrics(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate metric %q", name)
		}
		seen[name] = true
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no metrics specified")
	}
	return out, nil
}

func readFile(path string) []*trajmatch.Trajectory {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var db []*trajmatch.Trajectory
	if strings.HasSuffix(path, ".ndjson") || strings.HasSuffix(path, ".jsonl") {
		db, err = trajmatch.ReadNDJSON(f)
	} else {
		db, err = trajmatch.ReadCSV(f)
	}
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return db
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trajserve: "+format+"\n", args...)
	os.Exit(1)
}
