// Command trajknn builds a TrajTree over a trajectory file and answers
// k-nearest-neighbour queries under EDwP, printing the answers with query
// statistics. Queries are database trajectories named by -query, or every
// trajectory in a separate -queryfile.
//
// Usage:
//
//	trajgen -kind taxi -n 2000 -o db.csv
//	trajknn -db db.csv -query 17 -k 10
//	trajknn -db db.csv -queryfile probes.csv -k 5 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trajmatch"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database file (csv or ndjson by extension)")
		queryID   = flag.Int("query", -1, "ID of a database trajectory to use as the query")
		queryFile = flag.String("queryfile", "", "file of query trajectories")
		k         = flag.Int("k", 10, "number of neighbours")
		theta     = flag.Float64("theta", 0.8, "TrajTree θ (diversity drop threshold)")
		vps       = flag.Int("vps", 80, "vantage points per node")
		verify    = flag.Bool("verify", false, "cross-check against a sequential scan")
		cumula    = flag.Bool("cumulative", false, "use cumulative EDwP instead of EDwPavg")
	)
	flag.Parse()
	if *dbPath == "" {
		fatalf("-db is required")
	}

	db := readFile(*dbPath)
	t0 := time.Now()
	idx, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{
		Theta:      *theta,
		NumVPs:     *vps,
		Cumulative: *cumula,
		Parallel:   true,
		Seed:       1,
	})
	if err != nil {
		fatalf("build: %v", err)
	}
	fmt.Printf("built %v in %v\n", idx, time.Since(t0).Round(time.Millisecond))

	var queries []*trajmatch.Trajectory
	switch {
	case *queryFile != "":
		queries = readFile(*queryFile)
		for i, q := range queries {
			q.ID = 1_000_000 + i // avoid colliding with database IDs
		}
	case *queryID >= 0:
		q := idx.Lookup(*queryID)
		if q == nil {
			fatalf("trajectory %d not in database", *queryID)
		}
		queries = []*trajmatch.Trajectory{q}
	default:
		fatalf("give -query or -queryfile")
	}

	for _, q := range queries {
		t0 := time.Now()
		res, st := idx.KNN(q, *k)
		elapsed := time.Since(t0)
		fmt.Printf("query %d (%d points): %d results in %v "+
			"(dist calls %d, bounds %d, visited %d, pruned %d)\n",
			q.ID, q.NumPoints(), len(res), elapsed.Round(time.Microsecond),
			st.DistanceCalls, st.LowerBoundCalls, st.NodesVisited, st.NodesPruned)
		for rank, r := range res {
			fmt.Printf("  %2d. trajectory %-6d dist %.6g\n", rank+1, r.Traj.ID, r.Dist)
		}
		if *verify {
			want := idx.KNNBrute(q, *k)
			ok := len(want) == len(res)
			for i := 0; ok && i < len(res); i++ {
				if diff := res[i].Dist - want[i].Dist; diff > 1e-9 || diff < -1e-9 {
					ok = false
				}
			}
			if ok {
				fmt.Println("  verified against sequential scan ✓")
			} else {
				fmt.Println("  MISMATCH against sequential scan ✗")
				os.Exit(1)
			}
		}
	}
}

func readFile(path string) []*trajmatch.Trajectory {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var db []*trajmatch.Trajectory
	if strings.HasSuffix(path, ".ndjson") || strings.HasSuffix(path, ".jsonl") {
		db, err = trajmatch.ReadNDJSON(f)
	} else {
		db, err = trajmatch.ReadCSV(f)
	}
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return db
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trajknn: "+format+"\n", args...)
	os.Exit(1)
}
