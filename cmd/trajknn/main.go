// Command trajknn builds a sharded engine over a trajectory file and
// answers k-nearest-neighbour queries under EDwP through the unified
// Search API, printing the answers with query statistics. Queries are
// database trajectories named by -query, or every trajectory in a
// separate -queryfile. With -sub the query matches against the
// best-fitting contiguous sub-trajectory of each candidate (EDwPsub)
// instead of whole trajectories; with -timeout each query runs under a
// deadline honoured down to the EDwP dynamic program.
//
// Usage:
//
//	trajgen -kind taxi -n 2000 -o db.csv
//	trajknn -db db.csv -query 17 -k 10
//	trajknn -db db.csv -queryfile probes.csv -k 5 -verify
//	trajknn -db db.csv -query 17 -k 5 -sub -timeout 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"trajmatch"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database file (csv or ndjson by extension)")
		queryID   = flag.Int("query", -1, "ID of a database trajectory to use as the query")
		queryFile = flag.String("queryfile", "", "file of query trajectories")
		k         = flag.Int("k", 10, "number of neighbours")
		theta     = flag.Float64("theta", 0.8, "TrajTree θ (diversity drop threshold)")
		vps       = flag.Int("vps", 80, "vantage points per node")
		shards    = flag.Int("shards", 1, "number of hash-partitioned index shards")
		verify    = flag.Bool("verify", false, "cross-check against a sequential scan")
		cumula    = flag.Bool("cumulative", false, "use cumulative EDwP instead of EDwPavg")
		sub       = flag.Bool("sub", false, "sub-trajectory search (EDwPsub) instead of whole-trajectory k-NN")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0 disables)")
	)
	flag.Parse()
	if *dbPath == "" {
		fatalf("-db is required")
	}

	db := readFile(*dbPath)
	t0 := time.Now()
	engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{
		Theta:      *theta,
		NumVPs:     *vps,
		Cumulative: *cumula,
		Parallel:   true,
		Seed:       1,
	}, trajmatch.EngineOptions{CacheSize: -1, Shards: *shards})
	if err != nil {
		fatalf("build: %v", err)
	}
	fmt.Printf("indexed %d trajectories in %d shards in %v\n",
		engine.Size(), engine.Shards(), time.Since(t0).Round(time.Millisecond))

	var queries []*trajmatch.Trajectory
	switch {
	case *queryFile != "":
		queries = readFile(*queryFile)
		for i, q := range queries {
			q.ID = 1_000_000 + i // avoid colliding with database IDs
		}
	case *queryID >= 0:
		q := engine.Lookup(*queryID)
		if q == nil {
			fatalf("trajectory %d not in database", *queryID)
		}
		queries = []*trajmatch.Trajectory{q}
	default:
		fatalf("give -query or -queryfile")
	}

	req := trajmatch.Query{Kind: trajmatch.QueryKNN, K: *k, WithStats: true}
	if *sub {
		req.Kind = trajmatch.QuerySubKNN
	}
	for _, q := range queries {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		t0 := time.Now()
		ans, err := engine.Search(ctx, q, req)
		elapsed := time.Since(t0)
		cancel()
		if err != nil {
			fatalf("query %d: %v (after %v)", q.ID, err, elapsed.Round(time.Microsecond))
		}
		st := ans.Stats
		fmt.Printf("query %d (%d points): %d results in %v "+
			"(dist calls %d, abandons %d, bounds %d, visited %d, pruned %d)\n",
			q.ID, q.NumPoints(), len(ans.Results), elapsed.Round(time.Microsecond),
			st.DistanceCalls, st.EarlyAbandons, st.LowerBoundCalls, st.NodesVisited, st.NodesPruned)
		for rank, r := range ans.Results {
			fmt.Printf("  %2d. trajectory %-6d dist %.6g\n", rank+1, r.Traj.ID, r.Dist)
		}
		if *verify {
			want := bruteKNN(db, q, *k, *cumula, *sub)
			ok := len(want) == len(ans.Results)
			for i := 0; ok && i < len(ans.Results); i++ {
				if diff := ans.Results[i].Dist - want[i]; diff > 1e-9 || diff < -1e-9 {
					ok = false
				}
			}
			if ok {
				fmt.Println("  verified against sequential scan ✓")
			} else {
				fmt.Println("  MISMATCH against sequential scan ✗")
				os.Exit(1)
			}
		}
	}
}

// bruteKNN returns the k smallest distances of the configured metric by
// sequential scan, the reference the indexed answers must reproduce.
func bruteKNN(db []*trajmatch.Trajectory, q *trajmatch.Trajectory, k int, cumulative, sub bool) []float64 {
	ds := make([]float64, 0, len(db))
	for _, tr := range db {
		var d float64
		switch {
		case sub:
			d = trajmatch.EDwPSub(q, tr)
		case cumulative:
			d = trajmatch.EDwP(q, tr)
		default:
			d = trajmatch.EDwPAvg(q, tr)
		}
		ds = append(ds, d)
	}
	sort.Float64s(ds)
	if len(ds) > k {
		ds = ds[:k]
	}
	return ds
}

func readFile(path string) []*trajmatch.Trajectory {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var db []*trajmatch.Trajectory
	if strings.HasSuffix(path, ".ndjson") || strings.HasSuffix(path, ".jsonl") {
		db, err = trajmatch.ReadNDJSON(f)
	} else {
		db, err = trajmatch.ReadCSV(f)
	}
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return db
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trajknn: "+format+"\n", args...)
	os.Exit(1)
}
