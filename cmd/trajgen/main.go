// Command trajgen generates the synthetic datasets used throughout the
// reproduction: city-trip trajectories (the Beijing-cab stand-in) and
// labelled gesture trajectories (the ASL stand-in), optionally with one of
// the paper's noise models applied.
//
// With -stream, instead of writing the corpus as a static file, trajgen
// replays it as a live ingest stream: every trajectory becomes a live
// track whose points are emitted as append records in global timestamp
// order (so tracks interleave like concurrent vehicles), each followed by
// a seal once its last point is out. -rate paces the replay in records
// per second with -jitter adding bounded randomness to each gap, and
// -stream-batch groups consecutive points of one track per record.
// Records go to -o as NDJSON ({"op":"append",...} / {"op":"seal",...})
// ready to pipe into curl — or straight to a running trajserve when
// -addr names its base URL (POST /v1/append and /v1/seal).
//
// Usage:
//
//	trajgen -kind taxi -n 1000 -o taxi.csv
//	trajgen -kind asl -classes 98 -instances 27 -format ndjson -o asl.ndjson
//	trajgen -kind taxi -n 500 -noise inter -pct 0.25 -o noisy.csv
//	trajgen -kind taxi -n 100 -stream -rate 200 -jitter 0.3 -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"time"

	"trajmatch"
)

func main() {
	var (
		kind      = flag.String("kind", "taxi", "dataset kind: taxi | asl")
		n         = flag.Int("n", 1000, "number of taxi trajectories")
		classes   = flag.Int("classes", 98, "ASL class count")
		instances = flag.Int("instances", 27, "ASL instances per class")
		noise     = flag.String("noise", "", "optional noise model: inter | intra | phase | perturb")
		pct       = flag.Float64("pct", 0.25, "noise level (fraction of segments/points)")
		seed      = flag.Int64("seed", 1, "random seed")
		format    = flag.String("format", "csv", "output format: csv | ndjson")
		out       = flag.String("o", "-", "output file (- for stdout)")

		stream  = flag.Bool("stream", false, "replay the corpus as a timestamped append/seal stream instead of writing it as a file")
		rate    = flag.Float64("rate", 0, "stream pacing in records per second (0 = as fast as possible)")
		jitter  = flag.Float64("jitter", 0, "fractional jitter on each inter-record gap, 0..1")
		batch   = flag.Int("stream-batch", 1, "consecutive points of one track per append record")
		addr    = flag.String("addr", "", "trajserve base URL to POST the stream to (e.g. http://localhost:8080); empty writes NDJSON records to -o")
		sealEnd = flag.Bool("stream-seal", true, "seal each track after its last point")
		idOff   = flag.Int("id-offset", 0, "added to every streamed track ID, to keep live tracks clear of an already-indexed corpus")
	)
	flag.Parse()

	var db []*trajmatch.Trajectory
	switch *kind {
	case "taxi":
		cfg := trajmatch.DefaultTaxiConfig(*n)
		cfg.Seed = *seed
		db = trajmatch.GenerateTaxi(cfg)
	case "asl":
		cfg := trajmatch.DefaultASLConfig()
		cfg.NumClasses = *classes
		cfg.Instances = *instances
		cfg.Seed = *seed
		db = trajmatch.GenerateASL(cfg)
	default:
		fatalf("unknown -kind %q (want taxi or asl)", *kind)
	}

	switch *noise {
	case "":
	case "inter":
		db = trajmatch.InterNoise(db, *pct, *seed+1)
	case "intra":
		db = trajmatch.IntraNoise(db, *pct, *seed+1)
	case "phase":
		_, db = trajmatch.PhaseNoise(db, *pct, *seed+1)
	case "perturb":
		r := trajmatch.PerturbRadius(db, 30)
		db = trajmatch.PerturbNoise(db, *pct, r, *seed+1)
	default:
		fatalf("unknown -noise %q", *noise)
	}

	if *stream {
		runStream(db, streamConfig{
			rate: *rate, jitter: *jitter, batch: *batch, idOff: *idOff,
			addr: *addr, seal: *sealEnd, seed: *seed, out: *out,
		})
		return
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = trajmatch.WriteCSV(w, db)
	case "ndjson":
		err = trajmatch.WriteNDJSON(w, db)
	default:
		fatalf("unknown -format %q", *format)
	}
	if err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d trajectories\n", len(db))
}

type streamConfig struct {
	rate, jitter float64
	batch, idOff int
	addr         string
	seal         bool
	seed         int64
	out          string
}

// streamRecord is one replayed event, ordered by the timestamp of its
// first point (seals by the track's last timestamp, after its appends).
type streamRecord struct {
	t      float64
	seal   bool
	id     int
	label  int
	points [][3]float64
}

// runStream replays db as an interleaved append/seal stream.
func runStream(db []*trajmatch.Trajectory, cfg streamConfig) {
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	var recs []streamRecord
	for _, tr := range db {
		for lo := 0; lo < len(tr.Points); lo += cfg.batch {
			hi := lo + cfg.batch
			if hi > len(tr.Points) {
				hi = len(tr.Points)
			}
			pts := make([][3]float64, hi-lo)
			for i, p := range tr.Points[lo:hi] {
				pts[i] = [3]float64{p.X, p.Y, p.T}
			}
			recs = append(recs, streamRecord{
				t: tr.Points[lo].T, id: tr.ID + cfg.idOff, label: tr.Label, points: pts,
			})
		}
		if cfg.seal && len(tr.Points) >= 2 {
			recs = append(recs, streamRecord{
				t: tr.Points[len(tr.Points)-1].T, seal: true, id: tr.ID + cfg.idOff,
			})
		}
	}
	// Global timestamp order interleaves the tracks; ties resolve by
	// track then by kind so a track's appends stay ordered and its seal
	// comes last. sort.SliceStable keeps a track's equal-timestamp
	// appends in point order.
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].t != recs[j].t {
			return recs[i].t < recs[j].t
		}
		if recs[i].id != recs[j].id {
			return recs[i].id < recs[j].id
		}
		return !recs[i].seal && recs[j].seal
	})

	var sink func(streamRecord) error
	if cfg.addr != "" {
		client := &http.Client{Timeout: 30 * time.Second}
		sink = func(r streamRecord) error { return postRecord(client, cfg.addr, r) }
	} else {
		w := io.Writer(os.Stdout)
		if cfg.out != "-" {
			f, err := os.Create(cfg.out)
			if err != nil {
				fatalf("create %s: %v", cfg.out, err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		sink = func(r streamRecord) error { return enc.Encode(wireRecord(r)) }
	}

	rng := rand.New(rand.NewSource(cfg.seed + 2))
	var gap time.Duration
	if cfg.rate > 0 {
		gap = time.Duration(float64(time.Second) / cfg.rate)
	}
	appends, seals := 0, 0
	t0 := time.Now()
	for i, r := range recs {
		if gap > 0 && i > 0 {
			d := gap
			if cfg.jitter > 0 {
				d += time.Duration((rng.Float64()*2 - 1) * cfg.jitter * float64(gap))
			}
			if d > 0 {
				time.Sleep(d)
			}
		}
		if err := sink(r); err != nil {
			fatalf("stream record %d: %v", i, err)
		}
		if r.seal {
			seals++
		} else {
			appends++
		}
	}
	fmt.Fprintf(os.Stderr, "streamed %d appends and %d seals over %d tracks in %v\n",
		appends, seals, len(db), time.Since(t0).Round(time.Millisecond))
}

// wireRecord renders a stream record as the NDJSON op envelope.
func wireRecord(r streamRecord) map[string]any {
	if r.seal {
		return map[string]any{"op": "seal", "id": r.id}
	}
	m := map[string]any{"op": "append", "id": r.id, "points": r.points}
	if r.label != 0 {
		m["label"] = r.label
	}
	return m
}

// postRecord delivers one record to a running trajserve.
func postRecord(client *http.Client, base string, r streamRecord) error {
	path, body := "/v1/append", map[string]any{"id": r.id, "label": r.label, "points": r.points}
	if r.seal {
		path, body = "/v1/seal", map[string]any{"id": r.id}
	}
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trajgen: "+format+"\n", args...)
	os.Exit(1)
}
