// Command trajgen generates the synthetic datasets used throughout the
// reproduction: city-trip trajectories (the Beijing-cab stand-in) and
// labelled gesture trajectories (the ASL stand-in), optionally with one of
// the paper's noise models applied.
//
// Usage:
//
//	trajgen -kind taxi -n 1000 -o taxi.csv
//	trajgen -kind asl -classes 98 -instances 27 -format ndjson -o asl.ndjson
//	trajgen -kind taxi -n 500 -noise inter -pct 0.25 -o noisy.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"trajmatch"
)

func main() {
	var (
		kind      = flag.String("kind", "taxi", "dataset kind: taxi | asl")
		n         = flag.Int("n", 1000, "number of taxi trajectories")
		classes   = flag.Int("classes", 98, "ASL class count")
		instances = flag.Int("instances", 27, "ASL instances per class")
		noise     = flag.String("noise", "", "optional noise model: inter | intra | phase | perturb")
		pct       = flag.Float64("pct", 0.25, "noise level (fraction of segments/points)")
		seed      = flag.Int64("seed", 1, "random seed")
		format    = flag.String("format", "csv", "output format: csv | ndjson")
		out       = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var db []*trajmatch.Trajectory
	switch *kind {
	case "taxi":
		cfg := trajmatch.DefaultTaxiConfig(*n)
		cfg.Seed = *seed
		db = trajmatch.GenerateTaxi(cfg)
	case "asl":
		cfg := trajmatch.DefaultASLConfig()
		cfg.NumClasses = *classes
		cfg.Instances = *instances
		cfg.Seed = *seed
		db = trajmatch.GenerateASL(cfg)
	default:
		fatalf("unknown -kind %q (want taxi or asl)", *kind)
	}

	switch *noise {
	case "":
	case "inter":
		db = trajmatch.InterNoise(db, *pct, *seed+1)
	case "intra":
		db = trajmatch.IntraNoise(db, *pct, *seed+1)
	case "phase":
		_, db = trajmatch.PhaseNoise(db, *pct, *seed+1)
	case "perturb":
		r := trajmatch.PerturbRadius(db, 30)
		db = trajmatch.PerturbNoise(db, *pct, r, *seed+1)
	default:
		fatalf("unknown -noise %q", *noise)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = trajmatch.WriteCSV(w, db)
	case "ndjson":
		err = trajmatch.WriteNDJSON(w, db)
	default:
		fatalf("unknown -format %q", *format)
	}
	if err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d trajectories\n", len(db))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trajgen: "+format+"\n", args...)
	os.Exit(1)
}
