// benchcmp compares a `go test -bench` output against the machine-tagged
// baseline recorded in a BENCH_*.json file, printing a benchstat-style
// old/new table. Its job in CI is to make baseline mixing loud: BENCH_5
// was recorded on a 2.10GHz machine and BENCH_6/7 on 2.70GHz, and the
// resulting apples-to-oranges deltas went unnoticed for two PRs. The
// tool refuses to stay quiet when the cpu line of the fresh run differs
// from the machine recorded next to the baseline numbers; with -strict
// the mismatch (or a regression beyond -tolerance) becomes a failure.
//
// Usage:
//
//	go test -bench ... | tee bench.out
//	go run ./cmd/benchcmp -baseline BENCH_8.json bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the subset of a BENCH_*.json this tool understands:
// a "baseline" object tagging ns/op numbers with the machine that
// produced them.
type baselineFile struct {
	Baseline struct {
		Machine string             `json:"machine"`
		NsPerOp map[string]float64 `json:"ns_per_op"`
	} `json:"baseline"`
}

// benchLine matches standard testing output:
//
//	BenchmarkBackendKNN/edwp-4   200   816229 ns/op   ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	baselinePath := flag.String("baseline", "", "BENCH_*.json file holding the baseline block")
	strict := flag.Bool("strict", false, "exit nonzero on machine mismatch or regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional slowdown before -strict fails (0.25 = +25%)")
	flag.Parse()
	if *baselinePath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -baseline BENCH_N.json bench.out...")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", *baselinePath, err))
	}
	if len(base.Baseline.NsPerOp) == 0 {
		fatal(fmt.Errorf("%s: no baseline.ns_per_op block", *baselinePath))
	}

	got := map[string]float64{}
	var cpu string
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
				cpu = strings.TrimSpace(rest)
			}
			if m := benchLine.FindStringSubmatch(line); m != nil {
				v, _ := strconv.ParseFloat(m[2], 64)
				got[m[1]] = v
			}
		}
		f.Close()
	}

	sameMachine := cpu != "" && strings.Contains(base.Baseline.Machine, cpu)
	if !sameMachine {
		fmt.Printf("WARNING: baseline machine %q != this run's cpu %q — absolute deltas are not comparable\n",
			base.Baseline.Machine, cpu)
	}

	names := make([]string, 0, len(base.Baseline.NsPerOp))
	for name := range base.Baseline.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := false
	fmt.Printf("%-55s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		old := base.Baseline.NsPerOp[name]
		cur, ok := got[name]
		if !ok {
			fmt.Printf("%-55s %14.0f %14s %8s\n", name, old, "-", "missing")
			continue
		}
		delta := (cur - old) / old
		fmt.Printf("%-55s %14.0f %14.0f %+7.1f%%\n", name, old, cur, delta*100)
		if delta > *tolerance {
			regressed = true
		}
	}
	if *strict && (!sameMachine || regressed) {
		fmt.Println("benchcmp: strict mode failure (machine mismatch or regression over tolerance)")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
